"""Batched LingXi control loop for the lockstep simulation backend.

:class:`VectorControllerHost` is what lets optimization-enabled sessions —
the paper's actual workload — run on the vector fast path.  One host drives
the N per-session :class:`~repro.core.controller.LingXiController`s of a
lockstep cohort: after every engine step it folds the cohort's struct-of-
arrays segment outcomes into per-row state arrays (bandwidth window, dual
layer user state, stall trigger counters), checks the activation trigger
vectorized, and routes every session that activates at the same step through
**one** cross-session Monte-Carlo evaluation
(:meth:`~repro.fleet.batched.BatchedMonteCarloEvaluator.evaluate_requests`) —
a single NN forward per virtual step across all concurrently-optimizing
sessions' candidates and samples.

The per-segment bookkeeping is pure array math: the scalar path's
``BandwidthModel.update`` + ``UserState.observe_segment`` calls become a
handful of ``(N,)`` array operations per step, and full
:class:`~repro.core.state.UserState` / :class:`~repro.sim.bandwidth.
BandwidthModel` objects are materialised lazily — only for the (rare) rows
whose trigger fires, and once at the end of the run so controller
persistence and cross-session (wave) carry-over see exactly the state the
scalar loop would have left behind.

Equivalence contract
--------------------
The host reproduces the scalar engine's LingXi behaviour bit for bit, for
controllers whose evaluator is the batched lockstep evaluator (the fleet
default): every array update mirrors the float operation order of
``UserState.observe_segment``, per-session activation seeds come from each
controller's private stream in activation order, every candidate evaluation
draws from its own freshly seeded generator exactly as
``LingXiController.optimize`` would, and the controller bookkeeping (OBO
warm starts, activation history, parameter deployment) runs through the same
:class:`~repro.core.controller.LingXiController` methods the scalar path
uses.  Sessions whose evaluator cannot batch across sessions simply run
their own ``controller.optimize`` call — still correct, just without the
cross-session NN batching.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.state import PlayerSnapshot
from repro.datasets.stall_dataset import WINDOW_LENGTH
from repro.sim.bandwidth import BandwidthModel


class VectorControllerHost:
    """Drives the LingXi controllers of one lockstep cohort over SoA state."""

    def __init__(self, abrs: Sequence, ladder, segment_duration: float) -> None:
        for abr in abrs:
            if getattr(abr, "controller", None) is None or getattr(abr, "inner", None) is None:
                raise TypeError(
                    "VectorControllerHost requires controller-wrapped ABRs "
                    "(LingXiABR-style: .inner + .controller + observe hook)"
                )
        self.abrs = list(abrs)
        self.ladder = ladder
        self.max_bitrate = float(ladder.max_bitrate)
        self.segment_duration = float(segment_duration)
        #: Number of optimization activations the host has run (all sessions).
        self.activations = 0

        n = len(self.abrs)
        controllers = [abr.controller for abr in self.abrs]
        # --- trigger state (carries across sessions, like the controller's) --
        self.stalls_since = np.asarray(
            [c.stalls_since_optimization for c in controllers], dtype=int
        )
        self.thresholds = np.asarray(
            [c.trigger.stall_count_threshold for c in controllers], dtype=int
        )
        # --- bandwidth window (LingXiABR.bandwidth_model spans sessions) -----
        self.initial_samples = [list(abr.bandwidth_model._samples) for abr in self.abrs]
        # --- short-term user-state layer (fresh per session/cohort) ----------
        self.count = np.zeros(n, dtype=int)  # observed segments per row
        self.session_stall_time = np.zeros(n)
        self.session_stall_count = np.zeros(n, dtype=int)
        self.session_watch_time = np.zeros(n)
        self.since_stall = np.full(n, float(WINDOW_LENGTH))
        self.bitrate_cols: list[np.ndarray] = []
        self.throughput_cols: list[np.ndarray] = []
        self.stall_cols: list[np.ndarray] = []
        self.cumulative_cols: list[np.ndarray] = []
        self.since_stall_cols: list[np.ndarray] = []
        # --- long-term layer (seeded from each controller's restored state) --
        self.since_stall_exit = np.asarray(
            [c.user_state.segments_since_stall_exit for c in controllers]
        )
        self.lifetime_stall_events = np.asarray(
            [c.user_state.lifetime_stall_events for c in controllers], dtype=int
        )
        self.lifetime_stall_exits = np.asarray(
            [c.user_state.lifetime_stall_exits for c in controllers], dtype=int
        )
        self.lifetime_segments = np.asarray(
            [c.user_state.lifetime_segments for c in controllers], dtype=int
        )
        self.stall_exit_time_sum = np.asarray(
            [c.user_state.stall_exit_time_sum for c in controllers]
        )
        self.max_survived_stall_time = np.asarray(
            [c.user_state.max_survived_stall_time for c in controllers]
        )

    def observe_step(
        self,
        active: np.ndarray,
        levels: np.ndarray,
        stall: np.ndarray,
        throughput: np.ndarray,
        buffer_after: np.ndarray,
        exits: np.ndarray,
        bitrates: np.ndarray,
    ) -> None:
        """Fold one lockstep step into every active session's SoA state.

        Mirrors :meth:`repro.core.controller.LingXiABR.observe` — bandwidth
        window, ``UserState.observe_segment`` (same float operation order),
        trigger counter — as whole-cohort array updates, then batches all
        triggered sessions' optimizations.
        """
        # ``UserState.observe_segment`` distinguishes stall > 0 (user-state
        # bookkeeping) from the trigger counter's stall > 1e-12.
        stalled = active & (stall > 0.0)
        exited = active & exits
        survived = active & ~exits

        self.session_stall_count += stalled
        self.session_stall_time = np.where(
            stalled, self.session_stall_time + stall, self.session_stall_time
        )
        self.since_stall = np.where(
            active,
            np.where(stalled, 0.0, self.since_stall + 1.0),
            self.since_stall,
        )
        self.session_watch_time = np.where(
            active,
            self.session_watch_time + self.segment_duration,
            self.session_watch_time,
        )
        self.lifetime_segments += active
        self.lifetime_stall_events += stalled
        self.since_stall_exit = np.where(
            active, self.since_stall_exit + 1.0, self.since_stall_exit
        )
        stall_exit = exited & stalled
        self.lifetime_stall_exits += stall_exit
        self.stall_exit_time_sum = np.where(
            stall_exit,
            self.stall_exit_time_sum + self.session_stall_time,
            self.stall_exit_time_sum,
        )
        self.since_stall_exit = np.where(stall_exit, 0.0, self.since_stall_exit)
        self.max_survived_stall_time = np.where(
            survived,
            np.maximum(self.max_survived_stall_time, self.session_stall_time),
            self.max_survived_stall_time,
        )
        self.stalls_since += active & (stall > 1e-12)
        self.count += active

        self.bitrate_cols.append(bitrates[levels])
        self.throughput_cols.append(np.array(throughput))
        self.stall_cols.append(np.array(stall))
        self.cumulative_cols.append(np.array(self.session_stall_time))
        self.since_stall_cols.append(np.array(self.since_stall))

        candidates = active & (self.stalls_since > self.thresholds)
        if not candidates.any():
            return
        triggered: list[int] = []
        for i in np.flatnonzero(candidates).tolist():
            abr = self.abrs[i]
            controller = abr.controller
            self._sync_bandwidth_model(i)
            if controller.pruning.skip_optimization(
                abr.bandwidth_model, self.max_bitrate
            ):
                continue
            self._sync_row(i)
            triggered.append(i)
        if triggered:
            self._optimize(triggered, levels, buffer_after)
            self.stalls_since[triggered] = 0

    # ------------------------------------------------------------------ #
    # Lazy materialisation of per-row scalar state
    # ------------------------------------------------------------------ #
    def _sync_bandwidth_model(self, i: int) -> None:
        """Rebuild row ``i``'s ``LingXiABR.bandwidth_model`` sample window.

        Only the trailing ``model.window`` observations can survive the
        model's trim, so only those columns are materialised — this runs for
        every trigger-candidate row every step, and a row whose trigger
        keeps firing into the pruning rule must not pay for its whole
        history each time.
        """
        count = int(self.count[i])
        model = self.abrs[i].bandwidth_model
        observed = [
            float(col[i])
            for col in self.throughput_cols[max(0, count - model.window) : count]
        ]
        model._samples = (self.initial_samples[i] + observed)[-model.window :]
        model._cached_mean = None
        model._cached_std = None

    def _sync_row(self, i: int) -> None:
        """Materialise row ``i``'s full ``UserState`` into its controller."""
        controller = self.abrs[i].controller
        state = controller.user_state
        count = int(self.count[i])
        state.bitrates_kbps = [float(col[i]) for col in self.bitrate_cols[:count]]
        state.throughputs_kbps = [
            float(col[i]) for col in self.throughput_cols[:count]
        ]
        state.stall_times = [float(col[i]) for col in self.stall_cols[:count]]
        state.cumulative_stall_history = [
            float(col[i]) for col in self.cumulative_cols[:count]
        ]
        state.segments_since_stall_history = [
            float(col[i]) for col in self.since_stall_cols[:count]
        ]
        state.session_stall_count = int(self.session_stall_count[i])
        state.session_stall_time = float(self.session_stall_time[i])
        state.session_watch_time = float(self.session_watch_time[i])
        state.segments_since_stall_exit = float(self.since_stall_exit[i])
        state.lifetime_stall_events = int(self.lifetime_stall_events[i])
        state.lifetime_stall_exits = int(self.lifetime_stall_exits[i])
        state.lifetime_segments = int(self.lifetime_segments[i])
        state.stall_exit_time_sum = float(self.stall_exit_time_sum[i])
        state.max_survived_stall_time = float(self.max_survived_stall_time[i])
        controller.stalls_since_optimization = int(self.stalls_since[i])

    def finalize(self) -> None:
        """Write every row's final state back into its controller.

        Called once after the lockstep loop so controller persistence
        (checkpoints) and the next wave of a user's sessions see exactly the
        state the scalar loop would have left behind.
        """
        for i in range(len(self.abrs)):
            self._sync_bandwidth_model(i)
            self._sync_row(i)

    # ------------------------------------------------------------------ #
    # Batched optimization
    # ------------------------------------------------------------------ #
    def _optimize(
        self, triggered: list[int], levels: np.ndarray, buffer_after: np.ndarray
    ) -> None:
        """Run one activation for every triggered session, batched."""
        jobs: list[tuple[int, object, PlayerSnapshot]] = []
        for i in triggered:
            abr = self.abrs[i]
            jobs.append(
                (
                    i,
                    abr.controller,
                    PlayerSnapshot(
                        ladder=self.ladder,
                        segment_duration=self.segment_duration,
                        buffer=float(buffer_after[i]),
                        last_level=int(levels[i]),
                        bandwidth_model=abr.bandwidth_model.copy(),
                    ),
                )
            )
        self.activations += len(jobs)

        # Sessions whose evaluator cannot run cross-session requests fall
        # back to their own (still candidate/sample-batched) optimize call;
        # the rest are grouped by underlying predictor so each group's NN
        # forwards cover every session in it.
        groups: dict[int, list[tuple[int, object, PlayerSnapshot]]] = {}
        for job in jobs:
            evaluator = job[1].evaluator
            if hasattr(evaluator, "evaluate_requests"):
                key = id(getattr(evaluator.predictor, "predictor", evaluator.predictor))
                groups.setdefault(key, []).append(job)
            else:
                i, controller, snapshot = job
                self.abrs[i].set_parameters(
                    controller.optimize(self.abrs[i].inner, snapshot)
                )
        for group in groups.values():
            self._optimize_group(group)

    def _optimize_group(self, jobs: list[tuple[int, object, PlayerSnapshot]]) -> None:
        """One activation per job, evaluations flattened into shared rollouts."""
        from repro.fleet.batched import RolloutRequest

        evaluator = jobs[0][1].evaluator
        fixed = [job for job in jobs if job[1].config.mode == "fixed"]
        bayesian = [job for job in jobs if job[1].config.mode != "fixed"]

        requests: list[RolloutRequest] = []
        fixed_candidates: list[list] = []
        bayes_rounds: list[dict] = []
        for i, controller, snapshot in fixed:
            activation_seed = controller.draw_activation_seed()
            candidates = controller.parameter_space.candidate_grid(
                controller.config.fixed_candidates_per_dimension
            )
            fixed_candidates.append(candidates)
            requests.append(
                RolloutRequest(
                    candidates=candidates,
                    abr=self.abrs[i].inner,
                    snapshot=snapshot,
                    user_state=controller.user_state,
                    rngs=[
                        np.random.default_rng(activation_seed) for _ in candidates
                    ],
                    config=controller.evaluator.config,
                    pruning=controller.evaluator.pruning,
                )
            )
        for i, controller, snapshot in bayesian:
            activation_seed = controller.draw_activation_seed()
            bayes_rounds.append(
                {
                    "index": i,
                    "controller": controller,
                    "snapshot": snapshot,
                    "seed": activation_seed,
                    "incumbent_vector": controller.parameter_space.to_vector(
                        controller.best_parameters
                    ),
                }
            )
            requests.append(
                RolloutRequest(
                    candidates=[controller.best_parameters],
                    abr=self.abrs[i].inner,
                    snapshot=snapshot,
                    user_state=controller.user_state,
                    rngs=[np.random.default_rng(activation_seed)],
                    config=controller.evaluator.config,
                    pruning=controller.evaluator.pruning,
                )
            )

        values = evaluator.evaluate_requests(requests)
        fixed_values = values[: len(fixed)]
        incumbent_values = values[len(fixed) :]

        # Fixed sweeps complete in one round.
        for (i, controller, _snapshot), candidates, sweep in zip(
            fixed, fixed_candidates, fixed_values
        ):
            best_parameters, best_value = controller.select_best(candidates, sweep)
            controller.finish_activation(
                best_parameters, best_value, len(candidates)
            )
            self.abrs[i].set_parameters(best_parameters)

        # Bayesian rounds: every still-iterating session contributes one
        # single-candidate request per round, so each OBO step costs the
        # group one shared rollout.
        for state, incumbent in zip(bayes_rounds, incumbent_values):
            controller = state["controller"]
            controller.obo.start_round(
                incumbent=state["incumbent_vector"], incumbent_value=incumbent[0]
            )
            state["best_value"] = incumbent[0]
            state["best_parameters"] = controller.best_parameters
            state["remaining"] = controller.config.max_sample_times
        pending = [state for state in bayes_rounds if state["remaining"] > 0]
        while pending:
            round_requests = []
            round_candidates = []
            for state in pending:
                controller = state["controller"]
                candidate_vector = controller.obo.next_candidate()
                candidate = controller.parameter_space.to_parameters(candidate_vector)
                round_candidates.append((candidate_vector, candidate))
                round_requests.append(
                    RolloutRequest(
                        candidates=[candidate],
                        abr=self.abrs[state["index"]].inner,
                        snapshot=state["snapshot"],
                        user_state=controller.user_state,
                        rngs=[np.random.default_rng(state["seed"])],
                        best_exit_rate=state["best_value"],
                        config=controller.evaluator.config,
                        pruning=controller.evaluator.pruning,
                    )
                )
            round_values = evaluator.evaluate_requests(round_requests)
            for state, (candidate_vector, candidate), result in zip(
                pending, round_candidates, round_values
            ):
                value = result[0]
                controller = state["controller"]
                controller.obo.update(candidate_vector, value)
                if value < state["best_value"]:
                    state["best_value"] = value
                    state["best_parameters"] = candidate
                state["remaining"] -= 1
            pending = [state for state in pending if state["remaining"] > 0]
        for state in bayes_rounds:
            controller = state["controller"]
            controller.finish_activation(
                state["best_parameters"],
                state["best_value"],
                controller.config.max_sample_times + 1,
            )
            self.abrs[state["index"]].set_parameters(state["best_parameters"])
