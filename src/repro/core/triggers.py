"""Activation trigger and pruning rules (§4).

* **Trigger**: personalised optimization only activates after the user has
  accumulated more than ``threshold`` stall events (the paper picks 2 as the
  compromise between model recall and temporal responsiveness, Figure 8b).
* **Pre-playback pruning**: when the bandwidth distribution comfortably
  exceeds the top encoding bitrate (``mu - 3 sigma > Q_max``) stalls are so
  unlikely that the whole evaluation is skipped.
* **Virtual-playback pruning**: while evaluating one candidate, abort as soon
  as its running exit-rate estimate can no longer beat the best candidate seen
  so far.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.bandwidth import BandwidthModel


@dataclass(frozen=True)
class TriggerPolicy:
    """Stall-count activation threshold (Algorithm 1's ``eta``)."""

    stall_count_threshold: int = 2

    def __post_init__(self) -> None:
        if self.stall_count_threshold < 1:
            raise ValueError("stall_count_threshold must be at least 1")

    def should_trigger(self, stall_count_since_last_optimization: int) -> bool:
        """True when enough stall evidence has accumulated to re-optimise."""
        return stall_count_since_last_optimization > self.stall_count_threshold


@dataclass(frozen=True)
class PruningPolicy:
    """Pre-playback and virtual-playback pruning rules."""

    bandwidth_sigma_margin: float = 3.0
    min_virtual_segments: int = 16

    def __post_init__(self) -> None:
        if self.bandwidth_sigma_margin < 0:
            raise ValueError("bandwidth_sigma_margin must be non-negative")
        if self.min_virtual_segments < 1:
            raise ValueError("min_virtual_segments must be at least 1")

    def skip_optimization(self, bandwidth: BandwidthModel, max_bitrate_kbps: float) -> bool:
        """Pre-playback rule: ``mu - k*sigma > Q_max`` means stalls are negligible."""
        return bandwidth.mean - self.bandwidth_sigma_margin * bandwidth.std > max_bitrate_kbps

    def abort_candidate(
        self, exited: int, watched: int, best_exit_rate: float
    ) -> bool:
        """Virtual-playback rule: the candidate can no longer beat the incumbent.

        Once enough virtual segments have been watched, if even the optimistic
        completion of the remaining samples (no further exits) cannot bring the
        running exit rate below ``best_exit_rate``, evaluation is aborted.
        """
        if watched < self.min_virtual_segments:
            return False
        if best_exit_rate == float("inf"):
            return False
        running = exited / max(watched, 1)
        return running > best_exit_rate * 1.5
