"""Overall-statistics (OS) exit-rate model for quality and smoothness.

Takeaway 1: quality and smoothness influence exit rates at the 1e-3 and 1e-2
orders of magnitude — too small to model per user without being drowned by
content-driven noise, so LingXi models them with population-level statistics
(Equation 4's ``OS(Quality, Smoothness)`` term).  The model is two lookup
tables — baseline exit rate per quality level and an additive offset per
switch granularity — fitted from a production-log corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analytics.logs import LogCollection

#: Fallback per-level baseline exit rates (LD → FullHD), ~1e-3 spread.
_DEFAULT_LEVEL_RATES: tuple[float, ...] = (0.046, 0.044, 0.041, 0.040)
#: Fallback additive offsets per |switch granularity| (index 0 = no switch).
_DEFAULT_SWITCH_OFFSETS: tuple[float, ...] = (0.0, 0.009, 0.012, 0.015)
#: Extra offset for downward switches.
_DEFAULT_DOWNWARD_EXTRA: float = 0.004


@dataclass
class OverallStatisticsModel:
    """Population-level exit-rate baseline indexed by quality and switch."""

    level_rates: np.ndarray = field(
        default_factory=lambda: np.asarray(_DEFAULT_LEVEL_RATES)
    )
    switch_offsets: np.ndarray = field(
        default_factory=lambda: np.asarray(_DEFAULT_SWITCH_OFFSETS)
    )
    downward_extra: float = _DEFAULT_DOWNWARD_EXTRA

    def __post_init__(self) -> None:
        self.level_rates = np.asarray(self.level_rates, dtype=float)
        self.switch_offsets = np.asarray(self.switch_offsets, dtype=float)
        if self.level_rates.ndim != 1 or self.level_rates.size == 0:
            raise ValueError("level_rates must be a non-empty vector")
        if self.switch_offsets.ndim != 1 or self.switch_offsets.size == 0:
            raise ValueError("switch_offsets must be a non-empty vector")
        if np.any(self.level_rates < 0) or np.any(self.level_rates > 1):
            raise ValueError("level_rates must be probabilities")

    @classmethod
    def fit(cls, logs: LogCollection, num_levels: int) -> "OverallStatisticsModel":
        """Fit the lookup tables from a log corpus.

        Only non-stalled segments contribute, so the tables capture the
        quality/smoothness baseline rather than stall effects (those belong to
        the personalised neural model).
        """
        level_rates = np.zeros(num_levels)
        for level in range(num_levels):
            rate = logs.segment_exit_rate(
                lambda r, lvl=level: r.level == lvl and r.stall_time <= 0
            )
            level_rates[level] = rate if np.isfinite(rate) else np.nan
        # Fill gaps with the overall non-stall rate.
        overall = logs.segment_exit_rate(lambda r: r.stall_time <= 0)
        if not np.isfinite(overall):
            overall = float(np.nanmean(_DEFAULT_LEVEL_RATES))
        level_rates = np.where(np.isfinite(level_rates), level_rates, overall)

        max_granularity = num_levels - 1
        by_switch = logs.exit_rate_by_switch(range(-max_granularity, max_granularity + 1))
        no_switch = by_switch.get(0, overall)
        if not np.isfinite(no_switch):
            no_switch = overall
        switch_offsets = np.zeros(max_granularity + 1)
        downward_deltas = []
        for granularity in range(1, max_granularity + 1):
            up = by_switch.get(granularity, np.nan)
            down = by_switch.get(-granularity, np.nan)
            offsets = [v - no_switch for v in (up, down) if np.isfinite(v)]
            switch_offsets[granularity] = float(np.mean(offsets)) if offsets else 0.0
            if np.isfinite(up) and np.isfinite(down):
                downward_deltas.append(max(down - up, 0.0))
        downward_extra = float(np.mean(downward_deltas)) if downward_deltas else 0.0
        return cls(
            level_rates=np.clip(level_rates, 0.0, 1.0),
            switch_offsets=np.clip(switch_offsets, 0.0, 1.0),
            downward_extra=max(downward_extra, 0.0),
        )

    def predict(self, level: int, switch_magnitude: int = 0) -> float:
        """Baseline exit probability for a segment at ``level`` after a switch."""
        if level < 0:
            raise ValueError("level must be non-negative")
        level_rate = self.level_rates[min(level, self.level_rates.size - 1)]
        magnitude = min(abs(int(switch_magnitude)), self.switch_offsets.size - 1)
        offset = self.switch_offsets[magnitude]
        if switch_magnitude < 0:
            offset += self.downward_extra
        return float(np.clip(level_rate + offset, 0.0, 1.0))

    @property
    def num_levels(self) -> int:
        """Number of quality levels the model covers."""
        return int(self.level_rates.size)
