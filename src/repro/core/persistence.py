"""JSON persistence of the long-term state layer (§4, "Seamless Integration").

The production system serialises long-term behaviour data to HDF5 when the
app terminates and restores it asynchronously at the next startup; here the
same dual-layer semantics are kept with a plain JSON file: only the long-term
layer of the user state, the currently deployed parameters and the OBO trial
history are persisted — short-term state is always rebuilt from scratch.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.abr.base import QoEParameters
from repro.core.controller import LingXiController


def controller_state_payload(controller: LingXiController) -> dict:
    """Long-term state of a controller as a JSON-serialisable dict.

    This is the single source of truth for the persisted schema; the file
    helpers below and the fleet checkpointing layer
    (:mod:`repro.fleet.checkpoint`) both build on it.
    """
    return {
        "user_state": controller.user_state.long_term_dict(),
        "best_parameters": {
            "stall_penalty": controller.best_parameters.stall_penalty,
            "switch_penalty": controller.best_parameters.switch_penalty,
            "beta": controller.best_parameters.beta,
        },
        "obo_trials": [
            {"x": [float(v) for v in trial.x], "value": float(trial.value)}
            for trial in controller.obo.history
        ],
    }


def restore_controller_state(controller: LingXiController, payload: dict) -> None:
    """Restore a controller's long-term state from a payload dict (in place)."""
    controller.user_state.restore_long_term(payload.get("user_state", {}))
    parameters = payload.get("best_parameters")
    if parameters:
        controller.best_parameters = QoEParameters(
            stall_penalty=float(parameters["stall_penalty"]),
            switch_penalty=float(parameters["switch_penalty"]),
            beta=float(parameters["beta"]),
        )
    trials = payload.get("obo_trials", [])
    if trials:
        controller.obo.start_round()
        for trial in trials:
            controller.obo.update(np.asarray(trial["x"], dtype=float), float(trial["value"]))


def save_long_term_state(controller: LingXiController, path: str | Path) -> None:
    """Serialise a controller's long-term state to ``path``."""
    Path(path).write_text(json.dumps(controller_state_payload(controller), indent=2))


def load_long_term_state(controller: LingXiController, path: str | Path) -> None:
    """Restore a controller's long-term state from ``path`` (in place)."""
    restore_controller_state(controller, json.loads(Path(path).read_text()))
