"""Monte-Carlo parameter evaluation (Algorithm 2).

Given candidate QoE parameters, the evaluator runs ``M`` virtual playback
samples from the live player snapshot: future bandwidth is drawn from the
frozen ``N(mu_Cpast, sigma_Cpast)`` model, the candidate-parameterised ABR
picks bitrates, the player environment evolves by Equation 3, and the hybrid
exit-rate predictor decides (stochastically) whether the simulated user exits
after each segment.  The estimate is
``R_exit = exited_count / watched_count`` over all samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.core.exit_predictor import ExitRatePredictor
from repro.core.state import PlayerSnapshot, UserState
from repro.core.triggers import PruningPolicy
from repro.sim.player import PlayerEnvironment
from repro.sim.session import ABRContext
from repro.sim.video import Video


@dataclass(frozen=True)
class MonteCarloConfig:
    """Sampling knobs of Algorithm 2."""

    num_samples: int = 8
    max_sample_duration_s: float = 60.0
    vbr_std: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_samples < 1:
            raise ValueError("num_samples must be at least 1")
        if self.max_sample_duration_s <= 0:
            raise ValueError("max_sample_duration_s must be positive")


def virtual_video(snapshot: PlayerSnapshot, config: MonteCarloConfig) -> Video:
    """Synthetic video used for virtual playback from a live-player snapshot.

    Shared by the sequential evaluator here and the batched lockstep
    evaluator of :mod:`repro.fleet.batched`: ``T_sample`` seconds of segments
    on the snapshot's ladder, with the evaluator's own VBR jitter and seed so
    every candidate sees the same virtual segment sizes.
    """
    num_segments = max(
        2, int(np.ceil(config.max_sample_duration_s / snapshot.segment_duration))
    )
    return Video(
        ladder=snapshot.ladder,
        num_segments=num_segments,
        segment_duration=snapshot.segment_duration,
        vbr_std=config.vbr_std,
        seed=config.seed,
    )


class MonteCarloEvaluator:
    """EvaluateParameters via virtual playback (Algorithm 2)."""

    def __init__(
        self,
        predictor: ExitRatePredictor,
        config: MonteCarloConfig | None = None,
        pruning: PruningPolicy | None = None,
    ) -> None:
        self.predictor = predictor
        self.config = config or MonteCarloConfig()
        self.pruning = pruning or PruningPolicy()

    def _virtual_video(self, snapshot: PlayerSnapshot) -> Video:
        return virtual_video(snapshot, self.config)

    def evaluate(
        self,
        parameters: QoEParameters,
        abr: ABRAlgorithm,
        snapshot: PlayerSnapshot,
        user_state: UserState,
        rng: np.random.Generator | None = None,
        best_exit_rate: float = float("inf"),
    ) -> float:
        """Estimated exit rate ``R_exit`` for ``parameters``.

        The ABR's live parameters are restored on return, so evaluation never
        leaks candidate settings into real playback.  ``best_exit_rate`` (the
        incumbent across candidates) enables the virtual-playback pruning rule
        of §4.
        """
        rng = rng or np.random.default_rng(self.config.seed)
        saved_parameters = abr.parameters
        abr.set_parameters(parameters)
        video = self._virtual_video(snapshot)
        frozen_bandwidth = snapshot.bandwidth_model
        exited_count = 0
        watched_count = 0
        try:
            for _sample in range(self.config.num_samples):
                abr.reset()
                environment = PlayerEnvironment(
                    video=video,
                    rtt=snapshot.rtt,
                    initial_buffer=snapshot.buffer,
                    base_buffer_cap=snapshot.base_buffer_cap,
                    bandwidth_model=frozen_bandwidth.copy(),
                )
                simulated_state = user_state.copy()
                throughputs = list(simulated_state.throughputs_kbps)
                last_level = snapshot.last_level
                simulated_time = 0.0
                while simulated_time < self.config.max_sample_duration_s:
                    buffer_cap = environment.buffer_cap
                    context = ABRContext(
                        segment_index=environment.segment_index,
                        buffer=environment.buffer,
                        buffer_cap=buffer_cap,
                        last_level=last_level,
                        throughput_history_kbps=tuple(throughputs[-8:]),
                        next_segment_sizes_kbit=video.sizes_tuple(
                            environment.segment_index
                        ),
                        ladder=snapshot.ladder,
                        segment_duration=snapshot.segment_duration,
                        bandwidth_mean_kbps=frozen_bandwidth.mean,
                        bandwidth_std_kbps=frozen_bandwidth.std,
                    )
                    level = int(abr.select_level(context))
                    bandwidth = float(frozen_bandwidth.sample(rng))
                    result = environment.step(level, bandwidth, buffer_cap=buffer_cap)

                    simulated_state.observe_segment(
                        bitrate_kbps=result.bitrate_kbps,
                        throughput_kbps=result.throughput_kbps,
                        stall_time=result.stall_time,
                        segment_duration=snapshot.segment_duration,
                    )
                    throughputs.append(result.throughput_kbps)
                    stalled = result.stall_time > 1e-12
                    switch = 0 if last_level is None else level - last_level
                    exit_probability = self.predictor.predict(
                        simulated_state.feature_matrix(),
                        level=level,
                        switch_magnitude=switch,
                        stalled=stalled,
                    )
                    watched_count += 1
                    simulated_time += snapshot.segment_duration
                    last_level = level
                    if rng.random() < exit_probability:
                        exited_count += 1
                        break
                    if self.pruning.abort_candidate(exited_count, watched_count, best_exit_rate):
                        return exited_count / watched_count
        finally:
            abr.set_parameters(saved_parameters)
        if watched_count == 0:
            return 1.0
        return exited_count / watched_count
