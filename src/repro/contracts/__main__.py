"""``python -m repro.contracts`` — alias for ``repro.contracts.check``."""

from repro.contracts.check import main

raise SystemExit(main())
