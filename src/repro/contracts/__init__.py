"""Machine-checked determinism contracts.

The repo's headline guarantees — bit-exact scalar==vector traces,
shard/worker-count invariance, trace-neutral observability, leak-free
shared memory, versioned checkpoints — are architectural *contracts*,
not accidents of the current code.  This package keeps them honest:

- ``CONTRACTS.md`` (repo root) is the ledger: every invariant gets a
  stable ID, a statement, a scope, and the tests that pin it.
- :mod:`repro.contracts.rules` holds the AST rules that machine-check
  each ledger entry (stdlib ``ast`` only, no new dependencies).
- :mod:`repro.contracts.check` is the gate: ``python -m
  repro.contracts.check`` lints the tree, applies ``# contract: <ID>
  exempt(<reason>)`` waivers and the committed baseline, and
  cross-validates the ledger against code anchors and pinning tests.
- :mod:`repro.contracts.tripwire` is the runtime counterpart: under
  ``REPRO_CONTRACTS=strict`` the test suite monkeypatches global RNG
  and wall-clock entry points to raise when called from trace-affecting
  frames, catching dynamic paths the static pass cannot see.
"""

_EXPORTS = {
    "run_check": "repro.contracts.check",
    "parse_ledger": "repro.contracts.ledger",
    "validate_ledger": "repro.contracts.ledger",
    "ALL_RULES": "repro.contracts.rules",
    "Finding": "repro.contracts.rules",
    "lint_source": "repro.contracts.rules",
    "lint_tree": "repro.contracts.rules",
    "ContractViolation": "repro.contracts.tripwire",
    "strict_tripwire": "repro.contracts.tripwire",
}


def __getattr__(name: str):
    # Lazy so `python -m repro.contracts.check` does not re-import the
    # submodule it is executing (runpy's sys.modules warning).
    if name in _EXPORTS:
        import importlib

        return getattr(importlib.import_module(_EXPORTS[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ALL_RULES",
    "ContractViolation",
    "Finding",
    "lint_source",
    "lint_tree",
    "parse_ledger",
    "run_check",
    "strict_tripwire",
    "validate_ledger",
]
