"""AST rules behind the determinism-contract ledger.

Each rule machine-checks one ``CONTRACTS.md`` entry over a parsed
module.  Rules are pure functions of ``(path, source, tree)`` — no
imports of the code under inspection, stdlib :mod:`ast` only — so the
linter can run on fixture trees in tests exactly as it runs on the
repo.

Waivers are inline comments::

    # contract: DET-CLOCK-002 exempt(wall-time telemetry only)

A waiver on the flagged line, or on the line directly above it,
suppresses findings for that rule ID and doubles as a ledger anchor.
A bare ``# contract: <ID>`` (no ``exempt``) is a plain anchor: it
marks code that upholds the contract for the ledger cross-check but
suppresses nothing.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

# ---------------------------------------------------------------------------
# Findings and waivers
# ---------------------------------------------------------------------------

#: ``# contract: <ID>`` with an optional ``exempt(<reason>)`` tail.  The
#: reason may contain anything but a closing parenthesis at end of line.
CONTRACT_COMMENT = re.compile(
    r"#\s*contract:\s*(?P<id>[A-Z][A-Z0-9]*(?:-[A-Z0-9]+)*-\d{3})"
    r"(?:\s+exempt\((?P<reason>[^)]*)\))?"
)


@dataclass(frozen=True)
class Finding:
    """One contract violation at a precise source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def baseline_key(self, source_lines: list[str]) -> str:
        """Stable-ish identity for baseline matching.

        Keyed on the *content* of the flagged line rather than its
        number, so unrelated edits above a grandfathered finding do not
        invalidate the baseline.
        """
        text = ""
        if 1 <= self.line <= len(source_lines):
            text = source_lines[self.line - 1].strip()
        return f"{self.rule_id}|{self.path}|{text}"


@dataclass(frozen=True)
class Anchor:
    """One ``# contract: <ID>`` comment (plain or exempt) in a file."""

    rule_id: str
    path: str
    line: int
    reason: str | None  # None for plain anchors, the reason for waivers

    @property
    def is_waiver(self) -> bool:
        return self.reason is not None


def scan_anchors(path: str, source: str) -> list[Anchor]:
    """All contract comments in ``source``, in line order."""
    anchors: list[Anchor] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in CONTRACT_COMMENT.finditer(text):
            anchors.append(
                Anchor(
                    rule_id=match.group("id"),
                    path=path,
                    line=lineno,
                    reason=match.group("reason"),
                )
            )
    return anchors


def _waived(finding: Finding, waivers: dict[int, set[str]]) -> bool:
    """True when a same-line or preceding-line waiver covers the finding."""
    for line in (finding.line, finding.line - 1):
        if finding.rule_id in waivers.get(line, set()):
            return True
    return False


# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------

#: Path fragments (relative, ``/``-separated) that a rule applies to.
#: ``repro/...`` prefixes are matched against the path *after* any
#: leading ``src/`` component, so the same rules work on the repo tree
#: and on fixture trees rooted elsewhere.


def _module_path(path: str) -> str:
    """Normalise ``src/repro/sim/vector.py`` → ``repro/sim/vector.py``."""
    parts = Path(path).as_posix().split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    return "/".join(parts)


def _in_packages(path: str, packages: tuple[str, ...]) -> bool:
    mod = _module_path(path)
    return any(mod == pkg or mod.startswith(pkg + "/") for pkg in packages)


#: Everything that feeds a simulated trace: the engines, the controllers,
#: the populations, the network, the fleet runtime and the numerics they
#: sit on.  ``obs`` (observability) and ``contracts`` (this package) are
#: deliberately outside.
TRACE_PACKAGES = (
    "repro/sim",
    "repro/abr",
    "repro/users",
    "repro/net",
    "repro/fleet",
    "repro/core",
    "repro/nn",
    "repro/bayesopt",
    "repro/datasets",
    "repro/analytics",
    "repro/experiments",
)

#: Packages whose iteration order directly shapes traces and telemetry.
ORDER_PACKAGES = ("repro/sim", "repro/fleet", "repro/net")

#: The observability layer (OBS-NEUTRAL-004 scope).
OBS_PACKAGE = ("repro/obs",)

#: Modules that *own* the checkpoint payload schema (CKPT-006 scope
#: exclusion): the checkpoint layer itself and the payload helpers it
#: delegates to.
CKPT_OWNERS = ("repro/fleet/checkpoint.py", "repro/core/persistence.py")


def _is_test_path(path: str) -> bool:
    parts = Path(path).as_posix().split("/")
    return "tests" in parts or Path(path).name.startswith("test_")


# ---------------------------------------------------------------------------
# Import tracking (shared by several rules)
# ---------------------------------------------------------------------------


class _Imports(ast.NodeVisitor):
    """Collect the local names that modules of interest are bound to."""

    def __init__(self) -> None:
        self.modules: dict[str, set[str]] = {}  # real module -> local aliases
        self.from_names: dict[tuple[str, str], set[str]] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.modules.setdefault(alias.name, set()).add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                self.from_names.setdefault((node.module, alias.name), set()).add(local)
        self.generic_visit(node)

    def aliases(self, module: str) -> set[str]:
        return self.modules.get(module, set())


def _collect_imports(tree: ast.AST) -> _Imports:
    imports = _Imports()
    imports.visit(tree)
    return imports


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``np.random.default_rng`` → ``["np", "random", "default_rng"]``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


# ---------------------------------------------------------------------------
# DET-RNG-001 — no global RNG in trace-affecting code
# ---------------------------------------------------------------------------

#: Draw functions on the stdlib ``random`` module (module-level = the
#: hidden global Mersenne Twister).
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "paretovariate", "weibullvariate", "vonmisesvariate", "seed",
    "getrandbits", "randbytes", "getstate", "setstate",
}

#: Legacy global-state functions on ``numpy.random`` (the module-level
#: ``RandomState`` singleton).  ``default_rng``/``Generator``/``Philox``/
#: ``SeedSequence`` are the sanctioned, explicitly-seeded API.
_NUMPY_GLOBAL_FNS = {
    "random", "rand", "randn", "random_sample", "ranf", "sample",
    "randint", "random_integers", "choice", "uniform", "normal",
    "standard_normal", "shuffle", "permutation", "seed", "beta", "gamma",
    "poisson", "exponential", "binomial", "geometric", "laplace",
    "lognormal", "pareto", "rayleigh", "triangular", "vonmises",
    "weibull", "zipf", "bytes", "get_state", "set_state",
}


def check_global_rng(path: str, source: str, tree: ast.AST) -> Iterator[Finding]:
    """DET-RNG-001: all randomness flows from passed-in, explicitly
    seeded generators (Philox/``SeedSequence``/``default_rng(seed)``);
    the hidden global state of ``random`` and ``numpy.random`` is
    banned in trace-affecting code."""
    if _is_test_path(path) or not _in_packages(path, TRACE_PACKAGES):
        return
    imports = _collect_imports(tree)
    random_aliases = imports.aliases("random")
    numpy_aliases = imports.aliases("numpy")
    # `import numpy.random as npr` style
    npr_aliases = imports.aliases("numpy.random")
    # `from random import random` style
    from_random = {
        local: name
        for (module, name), locals_ in imports.from_names.items()
        if module == "random" and name in _STDLIB_RANDOM_FNS
        for local in locals_
    }
    from_np_random = {
        local: name
        for (module, name), locals_ in imports.from_names.items()
        if module == "numpy.random" and name in _NUMPY_GLOBAL_FNS
        for local in locals_
    }

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if chain is None:
            continue
        head, tail = chain[0], chain[1:]
        # random.<fn>(...)
        if head in random_aliases and len(tail) == 1 and tail[0] in _STDLIB_RANDOM_FNS:
            yield Finding(
                "DET-RNG-001", path, node.lineno, node.col_offset,
                f"call to global-state `random.{tail[0]}()`; pass an explicit "
                "np.random.Generator (Philox/SeedSequence) instead",
            )
        # np.random.<fn>(...) / numpy.random.<fn>(...)
        elif (
            head in numpy_aliases
            and len(tail) == 2
            and tail[0] == "random"
            and tail[1] in _NUMPY_GLOBAL_FNS
        ) or (head in npr_aliases and len(tail) == 1 and tail[0] in _NUMPY_GLOBAL_FNS):
            fn = tail[-1]
            yield Finding(
                "DET-RNG-001", path, node.lineno, node.col_offset,
                f"call to numpy's global-state `np.random.{fn}()`; use a "
                "passed-in Generator seeded from a SeedSequence",
            )
        # unseeded default_rng()
        elif (
            (head in numpy_aliases and tail == ["random", "default_rng"])
            or (head in npr_aliases and tail == ["default_rng"])
        ) and not node.args and not node.keywords:
            yield Finding(
                "DET-RNG-001", path, node.lineno, node.col_offset,
                "`default_rng()` without a seed draws OS entropy; thread an "
                "explicit seed or SeedSequence through instead",
            )
        # bare from-imports: random() / shuffle(...)
        elif len(chain) == 1 and chain[0] in from_random:
            yield Finding(
                "DET-RNG-001", path, node.lineno, node.col_offset,
                f"call to `{chain[0]}()` from-imported off the global "
                "`random` module; pass an explicit Generator instead",
            )
        elif len(chain) == 1 and chain[0] in from_np_random:
            yield Finding(
                "DET-RNG-001", path, node.lineno, node.col_offset,
                f"call to `{chain[0]}()` from-imported off `numpy.random`'s "
                "global state; pass an explicit Generator instead",
            )


# ---------------------------------------------------------------------------
# DET-CLOCK-002 — no wall-clock reads outside obs/benchmarks
# ---------------------------------------------------------------------------

_TIME_FNS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns",
}
_DATETIME_FNS = {"now", "utcnow", "today"}


def check_wall_clock(path: str, source: str, tree: ast.AST) -> Iterator[Finding]:
    """DET-CLOCK-002: simulated time is the only time; host-clock reads
    live in ``repro.obs`` and ``benchmarks/`` and must not influence a
    trace.  Any read elsewhere needs an explicit exempt waiver stating
    why it cannot leak into simulation state."""
    if _is_test_path(path) or not _in_packages(path, TRACE_PACKAGES):
        return
    imports = _collect_imports(tree)
    time_aliases = imports.aliases("time")
    datetime_aliases = imports.aliases("datetime")
    from_time = {
        local: name
        for (module, name), locals_ in imports.from_names.items()
        if module == "time" and name in _TIME_FNS
        for local in locals_
    }
    datetime_classes = {
        local
        for (module, name), locals_ in imports.from_names.items()
        if module == "datetime" and name in {"datetime", "date"}
        for local in locals_
    }

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if chain is None:
            continue
        head, tail = chain[0], chain[1:]
        if head in time_aliases and len(tail) == 1 and tail[0] in _TIME_FNS:
            yield Finding(
                "DET-CLOCK-002", path, node.lineno, node.col_offset,
                f"wall-clock read `time.{tail[0]}()` in a trace-affecting "
                "module; confine host time to repro.obs/benchmarks or waive "
                "with a reason",
            )
        elif len(chain) == 1 and chain[0] in from_time:
            yield Finding(
                "DET-CLOCK-002", path, node.lineno, node.col_offset,
                f"wall-clock read `{chain[0]}()` (from time import ...) in a "
                "trace-affecting module",
            )
        elif (
            head in datetime_classes and len(tail) == 1 and tail[0] in _DATETIME_FNS
        ) or (
            head in datetime_aliases
            and len(tail) == 2
            and tail[0] in {"datetime", "date"}
            and tail[1] in _DATETIME_FNS
        ):
            yield Finding(
                "DET-CLOCK-002", path, node.lineno, node.col_offset,
                f"wall-clock read `datetime.{tail[-1]}()` in a "
                "trace-affecting module",
            )


# ---------------------------------------------------------------------------
# DET-ITER-003 — no iteration over unordered sets in sim/fleet/net
# ---------------------------------------------------------------------------


def _is_set_producing(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = _attr_chain(node.func)
        if chain and chain[-1] in {"set", "frozenset"} and len(chain) == 1:
            return True
        if chain and chain[-1] in {
            "intersection", "union", "difference", "symmetric_difference",
        }:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        # s1 & s2 etc. — only flag when one side is itself set-producing,
        # otherwise int arithmetic would false-positive.
        return _is_set_producing(node.left) or _is_set_producing(node.right)
    return False


def check_unordered_iteration(
    path: str, source: str, tree: ast.AST
) -> Iterator[Finding]:
    """DET-ITER-003: set iteration order is salted per process; any
    ``for``/comprehension/``list()`` over a set in sim/fleet/net can
    silently reorder traces across runs.  Wrap in ``sorted(...)``."""
    if _is_test_path(path) or not _in_packages(path, ORDER_PACKAGES):
        return

    def flag(node: ast.expr) -> Iterator[Finding]:
        if _is_set_producing(node):
            yield Finding(
                "DET-ITER-003", path, node.lineno, node.col_offset,
                "iteration over an unordered set in order-sensitive code; "
                "wrap in sorted(...) to pin a deterministic order",
            )

    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from flag(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield from flag(gen.iter)
        elif isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain and len(chain) == 1 and chain[0] in {"list", "tuple", "enumerate"}:
                for arg in node.args[:1]:
                    yield from flag(arg)


# ---------------------------------------------------------------------------
# OBS-NEUTRAL-004 — obs never imports or mutates sim state
# ---------------------------------------------------------------------------

_SIM_STATE_PACKAGES = (
    "repro.sim", "repro.abr", "repro.users", "repro.net", "repro.core",
    "repro.nn", "repro.fleet", "repro.bayesopt", "repro.datasets",
    "repro.experiments",
)


def check_obs_neutrality(path: str, source: str, tree: ast.AST) -> Iterator[Finding]:
    """OBS-NEUTRAL-004: observability observes; it must stay importable
    and removable without touching simulation semantics.  Any import of
    a sim-state package from ``repro.obs`` (top-level or deferred) is
    flagged; read-only replay helpers carry explicit waivers."""
    if _is_test_path(path) or not _in_packages(path, OBS_PACKAGE):
        return
    for node in ast.walk(tree):
        modules: list[str] = []
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            modules = [node.module]
        for module in modules:
            if any(
                module == pkg or module.startswith(pkg + ".")
                for pkg in _SIM_STATE_PACKAGES
            ):
                yield Finding(
                    "OBS-NEUTRAL-004", path, node.lineno, node.col_offset,
                    f"repro.obs imports sim-state package `{module}`; obs "
                    "must observe without depending on (or mutating) the "
                    "simulation",
                )


# ---------------------------------------------------------------------------
# SHM-005 — every SharedMemory(create=True) documents its unlink path
# ---------------------------------------------------------------------------


def check_shared_memory(path: str, source: str, tree: ast.AST) -> Iterator[Finding]:
    """SHM-005: a created segment outlives the process unless someone
    unlinks it.  Every ``SharedMemory(create=True)`` call site must
    carry a ``# contract: SHM-005 exempt(<who unlinks, when>)`` waiver
    naming its registered unlink path — an unannotated create is a
    potential /dev/shm leak."""
    if _in_packages(path, ("repro/contracts",)):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if not chain or chain[-1] != "SharedMemory":
            continue
        creates = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
        if creates:
            yield Finding(
                "SHM-005", path, node.lineno, node.col_offset,
                "SharedMemory(create=True) without a registered unlink path; "
                "annotate the site with `# contract: SHM-005 exempt(<who "
                "unlinks, when>)` once the pairing is audited",
            )


# ---------------------------------------------------------------------------
# CKPT-006 — checkpoint payloads only via the migration registry
# ---------------------------------------------------------------------------


def check_checkpoint_registry(
    path: str, source: str, tree: ast.AST
) -> Iterator[Finding]:
    """CKPT-006: checkpoint schema knowledge lives in
    ``repro.fleet.checkpoint`` (versioning + explicit migrations) and
    ``repro.core.persistence`` (payload helpers).  Everything else goes
    through their API — no hand-rolled payload dicts, no reaching into
    the migration table."""
    mod = _module_path(path)
    if _is_test_path(path) or mod in CKPT_OWNERS:
        return
    if not _in_packages(path, TRACE_PACKAGES):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == "_MIGRATIONS":
            yield Finding(
                "CKPT-006", path, node.lineno, node.col_offset,
                "direct access to the checkpoint migration table; use "
                "register_checkpoint_migration()",
            )
        elif isinstance(node, ast.Attribute) and node.attr == "_MIGRATIONS":
            yield Finding(
                "CKPT-006", path, node.lineno, node.col_offset,
                "direct access to the checkpoint migration table; use "
                "register_checkpoint_migration()",
            )
        elif isinstance(node, ast.Dict):
            keys = {
                key.value
                for key in node.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
            if {"version", "states"} <= keys:
                yield Finding(
                    "CKPT-006", path, node.lineno, node.col_offset,
                    "hand-rolled checkpoint payload (dict with 'version' + "
                    "'states'); write through save_checkpoint_states() so "
                    "the schema stays versioned and migratable",
                )


# ---------------------------------------------------------------------------
# Registry + driver
# ---------------------------------------------------------------------------

RuleFn = Callable[[str, str, ast.AST], Iterator[Finding]]

#: Rule ID → checking function.  The ledger validator cross-checks this
#: registry against CONTRACTS.md entries marked machine-checked.
ALL_RULES: dict[str, RuleFn] = {
    "DET-RNG-001": check_global_rng,
    "DET-CLOCK-002": check_wall_clock,
    "DET-ITER-003": check_unordered_iteration,
    "OBS-NEUTRAL-004": check_obs_neutrality,
    "SHM-005": check_shared_memory,
    "CKPT-006": check_checkpoint_registry,
}


@dataclass
class FileLint:
    """Lint output for one file: surviving findings, waived findings,
    and every contract anchor seen."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    waived: list[tuple[Finding, str]] = field(default_factory=list)
    anchors: list[Anchor] = field(default_factory=list)
    source_lines: list[str] = field(default_factory=list)


def lint_source(path: str, source: str) -> FileLint:
    """Run every rule over one module's source."""
    result = FileLint(path=path, source_lines=source.splitlines())
    result.anchors = scan_anchors(path, source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                "CHK-PARSE", path, exc.lineno or 1, exc.offset or 0,
                f"cannot parse: {exc.msg}",
            )
        )
        return result
    waivers: dict[int, set[str]] = {}
    for anchor in result.anchors:
        if anchor.is_waiver:
            waivers.setdefault(anchor.line, set()).add(anchor.rule_id)
    raw: list[Finding] = []
    for rule in ALL_RULES.values():
        raw.extend(rule(path, source, tree))
    raw.sort(key=lambda f: (f.line, f.col, f.rule_id))
    for finding in raw:
        if _waived(finding, waivers):
            reason = next(
                (
                    a.reason or ""
                    for a in result.anchors
                    if a.is_waiver
                    and a.rule_id == finding.rule_id
                    and a.line in (finding.line, finding.line - 1)
                ),
                "",
            )
            result.waived.append((finding, reason))
        else:
            result.findings.append(finding)
    return result


def iter_python_files(root: Path, subdirs: tuple[str, ...] = ("src", "tests")) -> Iterator[Path]:
    """Every ``.py`` file under ``root``'s lintable subtrees, sorted."""
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        yield from sorted(p for p in base.rglob("*.py") if "__pycache__" not in p.parts)


def lint_tree(root: Path, subdirs: tuple[str, ...] = ("src", "tests")) -> list[FileLint]:
    """Lint every python file under ``root/src`` and ``root/tests``."""
    results = []
    for file_path in iter_python_files(root, subdirs):
        rel = file_path.relative_to(root).as_posix()
        results.append(lint_source(rel, file_path.read_text()))
    return results
