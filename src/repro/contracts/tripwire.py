"""Runtime determinism tripwire (``REPRO_CONTRACTS=strict``).

The AST pass in :mod:`repro.contracts.rules` sees call *sites*; it
cannot see a global RNG reached through a callback, ``getattr``, or a
third-party helper.  The tripwire closes that gap dynamically: it
monkeypatches the global entry points themselves —
``random.<draw fns>``, ``numpy.random.<legacy global fns>``,
``time.time``/``time_ns`` and (in pure-sim scope) ``perf_counter`` —
with guards that raise :class:`ContractViolation` whenever the
*caller's frame* lives in a trace-affecting package.  Callers outside
the guarded scope (tests, obs, benchmarks) pass through untouched, so
the suite behaves identically except that a contract breach becomes a
loud test failure instead of a silent golden-trace drift.

Activated by the autouse fixture in ``tests/conftest.py`` when
``REPRO_CONTRACTS=strict``; usable directly as a context manager::

    with strict_tripwire():
        run_fleet_day(...)
"""

from __future__ import annotations

import os
import random as _random_module
import sys
import time as _time_module
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

#: Path fragments identifying trace-affecting frames.  ``fleet`` keeps
#: waived ``perf_counter`` wall-time telemetry (excluded from bit-exact
#: comparison), so it is guarded for RNG + ``time.time`` but not for
#: the monotonic counters.
RNG_GUARDED = (
    "repro/sim/", "repro/abr/", "repro/users/", "repro/net/",
    "repro/fleet/", "repro/core/", "repro/nn/", "repro/bayesopt/",
    "repro/datasets/",
)
CLOCK_GUARDED = RNG_GUARDED
#: Monotonic counters are additionally banned only where not even
#: wall-time telemetry is allowed (pure simulation math).
COUNTER_GUARDED = (
    "repro/sim/", "repro/abr/", "repro/users/", "repro/net/",
    "repro/core/", "repro/nn/", "repro/bayesopt/",
)

_STDLIB_RANDOM_FNS = (
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "seed", "getrandbits",
)
_NUMPY_GLOBAL_FNS = (
    "random", "rand", "randn", "random_sample", "randint", "choice",
    "uniform", "normal", "standard_normal", "shuffle", "permutation",
    "seed", "exponential", "poisson", "binomial",
)
_TIME_FNS = ("time", "time_ns")
_COUNTER_FNS = ("perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns")


class ContractViolation(AssertionError):
    """A determinism contract was breached at runtime."""


def _caller_is_guarded(fragments: tuple[str, ...], depth: int = 2) -> str | None:
    """The offending filename when the caller's frame is in scope."""
    frame = sys._getframe(depth)
    filename = frame.f_code.co_filename.replace(os.sep, "/")
    for fragment in fragments:
        if fragment in filename:
            return f"{filename}:{frame.f_lineno}"
    return None


def _guard(
    original: Callable, name: str, rule_id: str, fragments: tuple[str, ...]
) -> Callable:
    def guarded(*args, **kwargs):
        site = _caller_is_guarded(fragments)
        if site is not None:
            raise ContractViolation(
                f"{rule_id}: {name}() called from trace-affecting code at "
                f"{site} under REPRO_CONTRACTS=strict; thread an explicit "
                "seeded Generator / simulated clock through instead"
            )
        return original(*args, **kwargs)

    guarded.__name__ = getattr(original, "__name__", name.rsplit(".", 1)[-1])
    guarded.__wrapped__ = original
    return guarded


@contextmanager
def strict_tripwire() -> Iterator[None]:
    """Install the guards; restores every patched attribute on exit."""
    patched: list[tuple[object, str, object]] = []

    def patch(owner: object, attr: str, name: str, rule: str, scope: tuple[str, ...]):
        original = getattr(owner, attr, None)
        if original is None or getattr(original, "__wrapped__", None) is not None:
            return
        patched.append((owner, attr, original))
        setattr(owner, attr, _guard(original, name, rule, scope))

    for fn in _STDLIB_RANDOM_FNS:
        patch(_random_module, fn, f"random.{fn}", "DET-RNG-001", RNG_GUARDED)
    for fn in _NUMPY_GLOBAL_FNS:
        patch(np.random, fn, f"np.random.{fn}", "DET-RNG-001", RNG_GUARDED)
    for fn in _TIME_FNS:
        patch(_time_module, fn, f"time.{fn}", "DET-CLOCK-002", CLOCK_GUARDED)
    for fn in _COUNTER_FNS:
        patch(_time_module, fn, f"time.{fn}", "DET-CLOCK-002", COUNTER_GUARDED)
    try:
        yield
    finally:
        for owner, attr, original in reversed(patched):
            setattr(owner, attr, original)


def strict_mode_requested(environ: dict[str, str] | None = None) -> bool:
    """True when the environment opts the test run into the tripwire."""
    env = os.environ if environ is None else environ
    return env.get("REPRO_CONTRACTS", "").strip().lower() == "strict"
