"""CONTRACTS.md parser + three-way ledger/code/tests cross-check.

The ledger is only worth having if it cannot rot.  ``validate_ledger``
enforces, in both directions:

- every ledger entry has ≥1 ``# contract: <ID>`` code anchor (plain or
  waiver) somewhere under ``src/`` or ``tests/``;
- every ledger entry names ≥1 pinning test that actually exists
  (``tests/<file>.py`` must be a file; ``tests/<file>.py::<name>`` must
  also resolve to a ``def``/``class`` in that file);
- every anchor in the code refers to a ledger entry (orphan anchors —
  a typo'd or deleted ID — fail);
- every machine-checked ledger entry has a registered rule in
  :data:`repro.contracts.rules.ALL_RULES`, and vice versa.

Delete a ledger entry, an anchor, or a pinning test and the validator
fails: the ledger, the code and the test suite cannot drift apart.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.contracts.rules import ALL_RULES, Anchor, iter_python_files, scan_anchors

#: ``## DET-RNG-001 — <title>`` section headings.
_ENTRY_HEADING = re.compile(
    r"^##\s+(?P<id>[A-Z][A-Z0-9]*(?:-[A-Z0-9]+)*-\d{3})\s*[—-]\s*(?P<title>.+?)\s*$"
)
#: Backticked test references inside the "Pinning tests" bullet.
_TEST_REF = re.compile(r"`(?P<ref>tests/[\w./-]+\.py(?:::[\w.]+)?)`")
_FIELD = re.compile(r"^-\s+\*\*(?P<name>[A-Za-z ]+):\*\*\s*(?P<value>.*)$")


@dataclass
class LedgerEntry:
    """One contract in CONTRACTS.md."""

    rule_id: str
    title: str
    statement: str = ""
    scope: str = ""
    check: str = ""
    pinning_tests: list[str] = field(default_factory=list)
    line: int = 0

    @property
    def machine_checked(self) -> bool:
        return "ast" in self.check.lower()


@dataclass
class LedgerReport:
    """Validation outcome: entries, anchors, and every cross-check error."""

    entries: dict[str, LedgerEntry] = field(default_factory=dict)
    anchors: list[Anchor] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def parse_ledger(text: str) -> tuple[dict[str, LedgerEntry], list[str]]:
    """Parse CONTRACTS.md into entries; returns (entries, parse errors)."""
    entries: dict[str, LedgerEntry] = {}
    errors: list[str] = []
    current: LedgerEntry | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        heading = _ENTRY_HEADING.match(line)
        if heading:
            current = LedgerEntry(
                rule_id=heading.group("id"),
                title=heading.group("title"),
                line=lineno,
            )
            if current.rule_id in entries:
                errors.append(
                    f"CONTRACTS.md:{lineno}: duplicate ledger entry "
                    f"{current.rule_id}"
                )
            entries[current.rule_id] = current
            continue
        if line.startswith("## "):
            current = None  # a non-entry section ends the current entry
            continue
        if current is None:
            continue
        fieldm = _FIELD.match(line.strip())
        if not fieldm:
            continue
        name = fieldm.group("name").strip().lower()
        value = fieldm.group("value").strip()
        if name == "statement":
            current.statement = value
        elif name == "scope":
            current.scope = value
        elif name == "check":
            current.check = value
        elif name == "pinning tests":
            current.pinning_tests = [m.group("ref") for m in _TEST_REF.finditer(value)]
    for entry in entries.values():
        if not entry.statement:
            errors.append(
                f"CONTRACTS.md:{entry.line}: {entry.rule_id} has no "
                "**Statement:** field"
            )
        if not entry.pinning_tests:
            errors.append(
                f"CONTRACTS.md:{entry.line}: {entry.rule_id} names no "
                "pinning tests (need >=1 `tests/...` reference)"
            )
    return entries, errors


def _test_ref_exists(root: Path, ref: str) -> str | None:
    """None when the reference resolves, else a human-readable problem."""
    if "::" in ref:
        file_part, name = ref.split("::", 1)
    else:
        file_part, name = ref, None
    test_path = root / file_part
    if not test_path.is_file():
        return f"pinning test file {file_part} does not exist"
    if name is not None:
        # methods are referenced as Class.test_name; match the last leg
        leg = name.split(".")[-1]
        text = test_path.read_text()
        if not re.search(rf"^\s*(?:def|class)\s+{re.escape(leg)}\b", text, re.M):
            return f"pinning test {ref} not found in {file_part}"
    return None


def collect_anchors(root: Path) -> list[Anchor]:
    """Every ``# contract:`` comment under ``root/src`` and ``root/tests``."""
    anchors: list[Anchor] = []
    for file_path in iter_python_files(root):
        rel = file_path.relative_to(root).as_posix()
        anchors.extend(scan_anchors(rel, file_path.read_text()))
    return anchors


def validate_ledger(root: Path, ledger_path: Path | None = None) -> LedgerReport:
    """Cross-check CONTRACTS.md against code anchors and pinning tests."""
    report = LedgerReport()
    ledger_path = ledger_path or root / "CONTRACTS.md"
    if not ledger_path.is_file():
        report.errors.append(f"ledger file {ledger_path} does not exist")
        return report
    report.entries, parse_errors = parse_ledger(ledger_path.read_text())
    report.errors.extend(parse_errors)
    report.anchors = collect_anchors(root)

    anchored_ids = {anchor.rule_id for anchor in report.anchors}

    for rule_id in sorted(report.entries):
        entry = report.entries[rule_id]
        if rule_id not in anchored_ids:
            report.errors.append(
                f"{rule_id}: no `# contract: {rule_id}` code anchor under "
                "src/ or tests/ — the ledger entry is unanchored"
            )
        for ref in entry.pinning_tests:
            problem = _test_ref_exists(root, ref)
            if problem:
                report.errors.append(f"{rule_id}: {problem}")

    for anchor in report.anchors:
        if anchor.rule_id not in report.entries:
            report.errors.append(
                f"{anchor.path}:{anchor.line}: orphan anchor "
                f"`# contract: {anchor.rule_id}` — no such ledger entry in "
                "CONTRACTS.md"
            )

    ledger_machine = {r for r, e in report.entries.items() if e.machine_checked}
    for rule_id in sorted(set(ALL_RULES) - ledger_machine):
        report.errors.append(
            f"{rule_id}: implemented in repro.contracts.rules but not "
            "recorded as an ast-checked entry in CONTRACTS.md"
        )
    for rule_id in sorted(ledger_machine - set(ALL_RULES)):
        report.errors.append(
            f"{rule_id}: CONTRACTS.md claims an ast check but no rule is "
            "registered in repro.contracts.rules.ALL_RULES"
        )
    return report
