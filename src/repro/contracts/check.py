"""The contracts gate: ``python -m repro.contracts.check``.

Lints ``src/`` and ``tests/`` with every rule in
:data:`repro.contracts.rules.ALL_RULES`, subtracts inline waivers and
the committed baseline, validates the CONTRACTS.md ledger, and writes a
machine-readable ``contracts_report.json`` when asked.

Exit codes (CI relies on these):

- ``0`` — clean: no new lint findings, ledger consistent
- ``1`` — new lint findings (not waived, not in baseline)
- ``2`` — ledger validation errors
- ``3`` — both
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from repro.contracts.ledger import validate_ledger
from repro.contracts.rules import FileLint, Finding, lint_tree

REPORT_VERSION = 1

#: The committed baseline of grandfathered findings.  The gate is
#: zero-*new*-violations: anything here is tolerated (and reported as
#: baseline debt), anything not here fails the build.
DEFAULT_BASELINE = "src/repro/contracts/baseline.json"


def load_baseline(path: Path) -> Counter[str]:
    """Baseline keys (rule|path|line-content) as a multiset."""
    if not path.is_file():
        return Counter()
    raw = json.loads(path.read_text())
    return Counter(raw.get("findings", []))


def write_baseline(path: Path, keys: list[str]) -> None:
    payload = {"version": 1, "findings": sorted(keys)}
    path.write_text(json.dumps(payload, indent=2) + "\n")


def split_by_baseline(
    lints: list[FileLint], baseline: Counter[str]
) -> tuple[list[tuple[Finding, str]], list[tuple[Finding, str]], Counter[str]]:
    """Partition findings into (new, suppressed); also report stale keys.

    Returns ``(new, suppressed, stale)`` where each finding is paired
    with its baseline key and ``stale`` counts baseline entries that no
    longer match anything (candidates for pruning).
    """
    remaining = Counter(baseline)
    new: list[tuple[Finding, str]] = []
    suppressed: list[tuple[Finding, str]] = []
    for lint in lints:
        for finding in lint.findings:
            key = finding.baseline_key(lint.source_lines)
            if remaining[key] > 0:
                remaining[key] -= 1
                suppressed.append((finding, key))
            else:
                new.append((finding, key))
    stale = Counter({key: n for key, n in remaining.items() if n > 0})
    return new, suppressed, stale


def run_check(
    root: Path,
    baseline_path: Path | None = None,
    report_path: Path | None = None,
    lint_only: bool = False,
    ledger_only: bool = False,
    update_baseline: bool = False,
    out=sys.stdout,
) -> int:
    """Run the full gate; returns the process exit code."""
    baseline_path = baseline_path or root / DEFAULT_BASELINE
    lints = lint_tree(root)
    baseline = load_baseline(baseline_path)
    new, suppressed, stale = split_by_baseline(lints, baseline)

    if update_baseline:
        keys = [k for _, k in new + suppressed]
        write_baseline(baseline_path, keys)
        print(f"baseline rewritten: {len(keys)} finding(s) grandfathered", file=out)
        new, suppressed, stale = [], [(f, k) for f, k in new + suppressed], Counter()

    ledger = None
    if not lint_only:
        ledger = validate_ledger(root)

    exit_code = 0
    if not ledger_only:
        for finding, _ in sorted(
            new, key=lambda item: (item[0].path, item[0].line, item[0].col)
        ):
            print(finding.render(), file=out)
        if new:
            exit_code |= 1
        waived_total = sum(len(lint.waived) for lint in lints)
        print(
            f"contracts lint: {sum(len(l.findings) for l in lints)} finding(s) "
            f"({len(new)} new, {len(suppressed)} baseline-suppressed), "
            f"{waived_total} waived, {len(stale)} stale baseline key(s) "
            f"across {len(lints)} files",
            file=out,
        )
    if ledger is not None:
        for error in ledger.errors:
            print(f"ledger: {error}", file=out)
        if ledger.errors:
            exit_code |= 2
        print(
            f"contracts ledger: {len(ledger.entries)} entries, "
            f"{len(ledger.anchors)} anchors, {len(ledger.errors)} error(s)",
            file=out,
        )

    if report_path is not None:
        report = {
            "version": REPORT_VERSION,
            "root": str(root),
            "exit_code": exit_code,
            "files_checked": len(lints),
            "new_findings": [
                {
                    "rule": f.rule_id,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "baseline_key": key,
                }
                for f, key in new
            ],
            "baseline_suppressed": [
                {"rule": f.rule_id, "path": f.path, "line": f.line, "baseline_key": key}
                for f, key in suppressed
            ],
            "stale_baseline_keys": sorted(stale.elements()),
            "waived": [
                {
                    "rule": f.rule_id,
                    "path": f.path,
                    "line": f.line,
                    "reason": reason,
                }
                for lint in lints
                for f, reason in lint.waived
            ],
            "anchors": [
                {
                    "rule": a.rule_id,
                    "path": a.path,
                    "line": a.line,
                    "kind": "waiver" if a.is_waiver else "anchor",
                    "reason": a.reason,
                }
                for lint in lints
                for a in lint.anchors
            ],
            "ledger": None
            if ledger is None
            else {
                "entries": sorted(ledger.entries),
                "errors": ledger.errors,
            },
        }
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(json.dumps(report, indent=2) + "\n")
    return exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.contracts.check",
        description="machine-check the determinism-contract ledger",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repo root holding src/, tests/ and CONTRACTS.md (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write a machine-readable contracts_report.json here",
    )
    parser.add_argument(
        "--lint-only", action="store_true", help="skip the ledger cross-check"
    )
    parser.add_argument(
        "--ledger-only", action="store_true", help="skip lint output (still computed)"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current finding into the baseline and exit 0",
    )
    args = parser.parse_args(argv)
    return run_check(
        root=args.root.resolve(),
        baseline_path=args.baseline,
        report_path=args.report,
        lint_only=args.lint_only,
        ledger_only=args.ledger_only,
        update_baseline=args.write_baseline,
    )


if __name__ == "__main__":
    raise SystemExit(main())
