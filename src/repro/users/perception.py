"""Per-user stall-sensitivity profiles.

Figure 5(b) of the paper shows three qualitative response shapes when users
face growing stall time: *sensitive* users whose exit probability ramps up
quickly, *threshold* users who tolerate stalls up to a personal limit and then
exit almost surely, and *insensitive* users whose exit probability grows
slowly.  Figure 5(a) shows the distribution of tolerable stall time across the
population and its day-to-day drift.  The profile object below captures both:
a response-curve shape plus a tolerance parameter that can drift over days.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

import numpy as np


class SensitivityArchetype(str, enum.Enum):
    """Qualitative stall-response shapes observed in Figure 5(b)."""

    SENSITIVE = "sensitive"
    THRESHOLD = "threshold"
    INSENSITIVE = "insensitive"


@dataclass(frozen=True)
class StallSensitivityProfile:
    """How one user's exit probability responds to stall events.

    Parameters
    ----------
    archetype:
        Response-curve shape (see :class:`SensitivityArchetype`).
    tolerance_s:
        Personal tolerable stall time in seconds.  For *threshold* users this
        is where the response jumps; for the other archetypes it scales the
        slope of the response.
    peak_exit_probability:
        Exit probability reached for very long stalls.
    daily_drift_s:
        Standard deviation of the day-to-day random walk of ``tolerance_s``
        (Figure 5a: most users drift little, ~20% drift 2–4 s).
    """

    archetype: SensitivityArchetype = SensitivityArchetype.THRESHOLD
    tolerance_s: float = 4.0
    peak_exit_probability: float = 0.8
    daily_drift_s: float = 0.5

    def __post_init__(self) -> None:
        if self.tolerance_s <= 0:
            raise ValueError("tolerance_s must be positive")
        if not 0 < self.peak_exit_probability <= 1:
            raise ValueError("peak_exit_probability must be in (0, 1]")
        if self.daily_drift_s < 0:
            raise ValueError("daily_drift_s must be non-negative")

    def stall_exit_probability(self, stall_time_s: float, stall_count: int = 1) -> float:
        """Exit probability contributed by a stall episode.

        ``stall_time_s`` is the cumulative stall time of the episode (seconds)
        and ``stall_count`` the number of stall events so far in the session;
        repeated stalls raise the exit probability beyond what a single stall
        of the same total length would (the compound effect of Figure 4d).
        """
        if stall_time_s < 0:
            raise ValueError("stall_time_s must be non-negative")
        if stall_time_s == 0:
            return 0.0
        peak = self.peak_exit_probability
        if self.archetype is SensitivityArchetype.SENSITIVE:
            base = peak * (1.0 - math.exp(-5.0 * stall_time_s / self.tolerance_s))
        elif self.archetype is SensitivityArchetype.THRESHOLD:
            # Logistic jump centred on the personal tolerance.
            steepness = 4.0 / max(self.tolerance_s * 0.15, 0.2)
            base = peak / (1.0 + math.exp(-steepness * (stall_time_s - self.tolerance_s)))
        else:  # INSENSITIVE
            base = peak * min(stall_time_s / (4.0 * self.tolerance_s), 1.0) * 0.5
        # Repeated stall events compound the annoyance (Figure 4d), but the
        # boost is capped so it cannot turn a tolerant user into a coin flip.
        multi_stall_boost = min(1.0 + 0.15 * max(stall_count - 1, 0), 1.5)
        return float(min(base * multi_stall_boost, 1.0))

    def expected_tolerable_stall_time(self) -> float:
        """The stall time at which the exit probability crosses one half of peak."""
        if self.archetype is SensitivityArchetype.THRESHOLD:
            return self.tolerance_s
        if self.archetype is SensitivityArchetype.SENSITIVE:
            return self.tolerance_s * math.log(2.0) / 2.5
        return 2.0 * self.tolerance_s

    def drifted(self, rng: np.random.Generator) -> "StallSensitivityProfile":
        """Next-day profile after applying the random tolerance drift."""
        if self.daily_drift_s == 0:
            return self
        new_tolerance = max(self.tolerance_s + rng.normal(0.0, self.daily_drift_s), 0.25)
        return replace(self, tolerance_s=float(new_tolerance))


def sample_profile(rng: np.random.Generator) -> StallSensitivityProfile:
    """Draw one user's stall-sensitivity profile from the population mix.

    The mixture follows Figure 5(a): roughly 20% of users have minimal
    tolerance, 20% tolerate more than 5 s, ~10% more than 10 s, the rest sit
    in between; ~20% of users drift 2–4 s day-to-day, most drift little.
    """
    u = rng.random()
    if u < 0.20:
        archetype = SensitivityArchetype.SENSITIVE
        tolerance = float(rng.uniform(0.5, 2.0))
        peak = float(rng.uniform(0.93, 0.99))
    elif u < 0.70:
        archetype = SensitivityArchetype.THRESHOLD
        tolerance = float(rng.uniform(2.0, 6.0))
        peak = float(rng.uniform(0.9, 0.98))
    elif u < 0.90:
        archetype = SensitivityArchetype.THRESHOLD
        tolerance = float(rng.uniform(5.0, 10.0))
        peak = float(rng.uniform(0.85, 0.96))
    else:
        archetype = SensitivityArchetype.INSENSITIVE
        tolerance = float(rng.uniform(8.0, 16.0))
        peak = float(rng.uniform(0.2, 0.35))
    drift = float(rng.uniform(2.0, 4.0)) if rng.random() < 0.2 else float(abs(rng.normal(0.0, 0.5)))
    return StallSensitivityProfile(
        archetype=archetype,
        tolerance_s=tolerance,
        peak_exit_probability=peak,
        daily_drift_s=drift,
    )
