"""User engagement (exit) models.

Every class here implements the :class:`repro.sim.session.ExitModel`
interface: ``exit_probability(observation) -> float`` plus ``reset()``.  Four
families are provided:

* :class:`BaselineExitModel` — content-driven exits unrelated to QoS.  These
  are the "random exit events unrelated to QoS metrics" that dominate the ALL
  dataset in Figure 9(a) and they also produce the declining hazard with watch
  time seen in Figure 4(d).
* :class:`QoSAwareExitModel` — the behavioural model used to synthesise
  production logs: baseline hazard + universal quality/smoothness offsets (at
  the 1e-3 / 1e-2 magnitudes of Takeaway 1) + the user's personal stall
  response (1e-1 magnitude) from a
  :class:`~repro.users.perception.StallSensitivityProfile`.
* :class:`RuleBasedUser` — the deterministic exit rules of §5.2 (exit when
  cumulative stall time or stall count crosses a threshold).
* :class:`DataDrivenUser` — a per-user logistic exit model fitted from that
  user's observed engagement history (the paper's data-driven modelling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.session import ExitObservation
from repro.users.perception import StallSensitivityProfile

#: Universal exit-rate offsets per quality tier (index = ladder level, lowest
#: first).  Magnitude ~1e-3 per Takeaway 1; lower quality → slightly higher
#: exit rate, with a diminishing gap between the top two tiers (Figure 4a).
QUALITY_TIER_EXIT_OFFSETS: tuple[float, ...] = (0.006, 0.004, 0.001, 0.0)

#: Universal exit-rate penalty per unit of |quality switch| (magnitude ~1e-2).
SWITCH_EXIT_PENALTY: float = 0.008
#: Extra penalty applied to downward switches (Figure 4b: degradation slightly
#: worse than enhancement).
DOWNWARD_SWITCH_EXTRA: float = 0.004


@dataclass
class BaselineExitModel:
    """Content-driven exits independent of QoS.

    The per-segment hazard starts at ``base_hazard`` and decays towards
    ``floor_hazard`` as watch time accumulates — users who have stayed a while
    are committed to the video (Figure 4d, "Beyond 20s").
    """

    base_hazard: float = 0.02
    floor_hazard: float = 0.005
    decay_time_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0 <= self.floor_hazard <= self.base_hazard <= 1:
            raise ValueError("need 0 <= floor_hazard <= base_hazard <= 1")
        if self.decay_time_s <= 0:
            raise ValueError("decay_time_s must be positive")

    def exit_probability(self, observation: ExitObservation) -> float:
        """Content-driven hazard for this segment."""
        decay = float(np.exp(-observation.watch_time / self.decay_time_s))
        return self.floor_hazard + (self.base_hazard - self.floor_hazard) * decay

    def reset(self) -> None:
        """Stateless — nothing to reset."""

    @classmethod
    def vector_exit_kernel(cls, models):
        """Batched :meth:`exit_probability` over a struct-of-arrays step view.

        Returns ``kernel(view) -> probabilities`` where ``view`` is a
        :class:`repro.sim.vector.ExitStepView` with one row per model.  The
        hazard expression is evaluated elementwise in the same operation
        order as the scalar method, so outputs match bit-for-bit.
        """
        base = np.asarray([m.base_hazard for m in models], dtype=float)
        floor = np.asarray([m.floor_hazard for m in models], dtype=float)
        decay_time = np.asarray([m.decay_time_s for m in models], dtype=float)

        def kernel(view) -> np.ndarray:
            decay = np.exp(-view.watch_time / decay_time)
            return floor + (base - floor) * decay

        return kernel


@dataclass
class QoSAwareExitModel:
    """Behavioural exit model combining content, quality, smoothness and stall.

    This is the generative model behind the synthetic production logs: it
    reproduces the hierarchical influence magnitudes of Takeaway 1
    (quality ≈ 1e-3, smoothness ≈ 1e-2, stall ≈ 1e-1) on top of a content
    baseline, with the stall response personalised through ``profile``.
    """

    profile: StallSensitivityProfile = field(default_factory=StallSensitivityProfile)
    baseline: BaselineExitModel = field(default_factory=BaselineExitModel)
    quality_offsets: tuple[float, ...] = QUALITY_TIER_EXIT_OFFSETS
    switch_penalty: float = SWITCH_EXIT_PENALTY
    downward_switch_extra: float = DOWNWARD_SWITCH_EXTRA
    engagement_stall_discount: float = 0.85
    engagement_time_s: float = 20.0

    def exit_probability(self, observation: ExitObservation) -> float:
        """Combine all exit drivers into one per-segment probability."""
        probability = self.baseline.exit_probability(observation)

        level = min(observation.level, len(self.quality_offsets) - 1)
        probability += self.quality_offsets[level]

        switch = observation.switch_magnitude
        if switch != 0:
            probability += self.switch_penalty * min(abs(switch), 3)
            if switch < 0:
                probability += self.downward_switch_extra

        if observation.stall_time > 1e-12:
            stall_probability = self.profile.stall_exit_probability(
                observation.cumulative_stall_time, observation.stall_count
            )
            # Long-engaged viewers tolerate stalls better (Figure 4d).
            if observation.watch_time > self.engagement_time_s:
                stall_probability *= self.engagement_stall_discount
            # Higher quality raises expectations, shrinking stall tolerance.
            top_level = len(self.quality_offsets) - 1
            if observation.level >= top_level:
                stall_probability *= 1.15
            probability += stall_probability

        return float(min(max(probability, 0.0), 1.0))

    def reset(self) -> None:
        """Stateless — nothing to reset."""

    @classmethod
    def vector_exit_kernel(cls, models):
        """Batched :meth:`exit_probability` over a struct-of-arrays step view.

        The content/quality/smoothness terms are pure array math in the same
        operation order as the scalar method.  The stall response — rare by
        construction (stalls are the long-tail event the paper studies) — is
        delegated to each stalled row's own
        :meth:`~repro.users.perception.StallSensitivityProfile.stall_exit_probability`
        in a masked scalar loop, so the per-user response curves (and their
        ``math.exp`` rounding) are reproduced exactly.
        """
        base = np.asarray([m.baseline.base_hazard for m in models], dtype=float)
        floor = np.asarray([m.baseline.floor_hazard for m in models], dtype=float)
        decay_time = np.asarray([m.baseline.decay_time_s for m in models], dtype=float)
        switch_penalty = np.asarray([m.switch_penalty for m in models], dtype=float)
        downward_extra = np.asarray(
            [m.downward_switch_extra for m in models], dtype=float
        )
        num_offsets = np.asarray(
            [len(m.quality_offsets) for m in models], dtype=int
        )
        offsets = np.zeros((len(models), int(num_offsets.max())))
        for row, model in enumerate(models):
            offsets[row, : len(model.quality_offsets)] = model.quality_offsets
        rows_index = np.arange(len(models))

        def kernel(view) -> np.ndarray:
            decay = np.exp(-view.watch_time / decay_time)
            probability = floor + (base - floor) * decay
            level = np.minimum(view.level, num_offsets - 1)
            probability = probability + offsets[rows_index, level]
            switch = np.where(
                view.previous_level < 0, 0, view.level - view.previous_level
            )
            probability = probability + np.where(
                switch != 0, switch_penalty * np.minimum(np.abs(switch), 3), 0.0
            )
            probability = probability + np.where(switch < 0, downward_extra, 0.0)
            for row in np.flatnonzero(view.active & view.stalled):
                model = models[row]
                stall_probability = model.profile.stall_exit_probability(
                    float(view.cumulative_stall_time[row]),
                    int(view.stall_count[row]),
                )
                if view.watch_time > model.engagement_time_s:
                    stall_probability *= model.engagement_stall_discount
                if view.level[row] >= len(model.quality_offsets) - 1:
                    stall_probability *= 1.15
                probability[row] += stall_probability
            return np.minimum(np.maximum(probability, 0.0), 1.0)

        return kernel


@dataclass
class RuleBasedUser:
    """Deterministic exit rules of §5.2: thresholds on stall time and count.

    The user exits (probability 1) the moment the session's cumulative stall
    time reaches ``stall_time_threshold_s`` seconds or the number of stall
    events reaches ``stall_count_threshold``; otherwise the exit probability
    is 0.  Thresholds between 2 and 9 generate the 64 engagement rules of the
    rule-based simulation study.
    """

    stall_time_threshold_s: float = 4.0
    stall_count_threshold: int = 4

    def __post_init__(self) -> None:
        if self.stall_time_threshold_s <= 0:
            raise ValueError("stall_time_threshold_s must be positive")
        if self.stall_count_threshold <= 0:
            raise ValueError("stall_count_threshold must be positive")

    def exit_probability(self, observation: ExitObservation) -> float:
        """1.0 once either threshold is crossed, else 0.0."""
        if observation.cumulative_stall_time >= self.stall_time_threshold_s:
            return 1.0
        if observation.stall_count >= self.stall_count_threshold:
            return 1.0
        return 0.0

    def reset(self) -> None:
        """Stateless — nothing to reset."""

    @classmethod
    def vector_exit_kernel(cls, models):
        """Batched :meth:`exit_probability`: two threshold comparisons."""
        time_threshold = np.asarray(
            [m.stall_time_threshold_s for m in models], dtype=float
        )
        count_threshold = np.asarray(
            [m.stall_count_threshold for m in models], dtype=int
        )

        def kernel(view) -> np.ndarray:
            crossed = (view.cumulative_stall_time >= time_threshold) | (
                view.stall_count >= count_threshold
            )
            return np.where(crossed, 1.0, 0.0)

        return kernel


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


def observation_features(observation: ExitObservation) -> np.ndarray:
    """Feature vector used by :class:`DataDrivenUser`.

    Features: [segment stall time, cumulative stall time, stall count,
    watch time (min), bitrate (Mbps), |switch magnitude|, buffer (s)].
    """
    return np.asarray(
        [
            observation.stall_time,
            observation.cumulative_stall_time,
            float(observation.stall_count),
            observation.watch_time / 60.0,
            observation.bitrate_kbps / 1000.0,
            float(abs(observation.switch_magnitude)),
            observation.buffer,
        ],
        dtype=float,
    )


@dataclass
class DataDrivenUser:
    """Per-user logistic exit model fitted from engagement history."""

    weights: np.ndarray
    bias: float
    feature_scale: np.ndarray

    def exit_probability(self, observation: ExitObservation) -> float:
        """Logistic exit probability for this observation."""
        x = observation_features(observation) / self.feature_scale
        return float(_sigmoid(np.asarray([x @ self.weights + self.bias]))[0])

    def reset(self) -> None:
        """Stateless — nothing to reset."""


def features_from_segment_records(records) -> tuple[np.ndarray, np.ndarray]:
    """Observation features and exit labels from a sequence of segment records.

    Mirrors :func:`observation_features` for
    :class:`~repro.sim.session.SegmentRecord` sequences so per-user exit
    models can be fitted directly from logged playback traces (the paper's
    data-driven user modelling, §5.2).
    """
    features: list[list[float]] = []
    labels: list[int] = []
    previous_level: int | None = None
    for record in records:
        switch = 0 if previous_level is None else record.level - previous_level
        features.append(
            [
                record.stall_time,
                record.cumulative_stall_time,
                float(record.stall_count),
                record.watch_time / 60.0,
                record.bitrate_kbps / 1000.0,
                float(abs(switch)),
                record.buffer_after,
            ]
        )
        labels.append(int(record.exited))
        previous_level = record.level
    if not features:
        raise ValueError("need at least one segment record")
    return np.asarray(features, dtype=float), np.asarray(labels, dtype=int)


def fit_data_driven_user(
    features: np.ndarray,
    labels: np.ndarray,
    learning_rate: float = 0.2,
    epochs: int = 300,
    l2: float = 1e-3,
) -> DataDrivenUser:
    """Fit a :class:`DataDrivenUser` by logistic regression (full-batch GD).

    ``features`` has shape (n, 7) (see :func:`observation_features`);
    ``labels`` is 0/1 with 1 meaning the user exited after that segment.
    """
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=float)
    if features.ndim != 2 or features.shape[0] != labels.shape[0]:
        raise ValueError("features must be (n, d) with matching labels")
    if features.shape[0] == 0:
        raise ValueError("need at least one sample")

    scale = np.maximum(np.std(features, axis=0), 1e-6)
    x = features / scale
    n, d = x.shape
    weights = np.zeros(d)
    bias = 0.0
    # Reweight classes so rare exits are not ignored.
    positive = max(labels.sum(), 1.0)
    negative = max(n - labels.sum(), 1.0)
    sample_weight = np.where(labels > 0.5, n / (2.0 * positive), n / (2.0 * negative))

    for _ in range(epochs):
        predictions = _sigmoid(x @ weights + bias)
        error = (predictions - labels) * sample_weight
        grad_w = x.T @ error / n + l2 * weights
        grad_b = float(np.mean(error))
        weights -= learning_rate * grad_w
        bias -= learning_rate * grad_b

    return DataDrivenUser(weights=weights, bias=float(bias), feature_scale=scale)
