"""User models: stall perception, engagement / exit behaviour, populations.

The paper's central observation (§2.3) is that users differ strongly — and
fairly stably — in how stall events drive them to abandon a video, while the
influence of video quality and smoothness is universal and orders of magnitude
smaller.  This package provides:

* :mod:`repro.users.perception` — per-user stall-sensitivity profiles
  (sensitive / threshold / insensitive archetypes of Figure 5b, with
  day-to-day drift);
* :mod:`repro.users.engagement` — exit models plugging into the session
  engine: the QoS-aware behavioural model used to synthesise production logs,
  the deterministic rule-based users of §5.2, and per-user data-driven models
  fitted from engagement histories;
* :mod:`repro.users.population` — heterogeneous user population generation
  matching the distributions reported in Figures 2 and 5;
* :mod:`repro.users.retention` — engagement-driven retention models mapping a
  day's QoE outcome to a next-day arrival probability (the churn loop of the
  longitudinal fleet, :mod:`repro.fleet.longitudinal`).
"""

from repro.users.perception import StallSensitivityProfile, SensitivityArchetype
from repro.users.engagement import (
    BaselineExitModel,
    QoSAwareExitModel,
    RuleBasedUser,
    DataDrivenUser,
    fit_data_driven_user,
    features_from_segment_records,
)
from repro.users.population import UserProfile, UserPopulation
from repro.users.retention import (
    DataDrivenRetentionModel,
    EngagementSummary,
    RetentionModel,
    RuleBasedRetentionModel,
    fit_retention_model,
    summarize_sessions,
)

__all__ = [
    "StallSensitivityProfile",
    "SensitivityArchetype",
    "BaselineExitModel",
    "QoSAwareExitModel",
    "RuleBasedUser",
    "DataDrivenUser",
    "fit_data_driven_user",
    "features_from_segment_records",
    "UserProfile",
    "UserPopulation",
    "DataDrivenRetentionModel",
    "EngagementSummary",
    "RetentionModel",
    "RuleBasedRetentionModel",
    "fit_retention_model",
    "summarize_sessions",
]
