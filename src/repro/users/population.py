"""Heterogeneous user population generation.

A :class:`UserProfile` bundles everything the simulated experiments need to
know about one user: their network regime (long-run mean bandwidth and
burstiness — matching the platform-wide distribution of Figure 2a), their
stall-sensitivity profile (Figure 5), and their activity level (sessions per
day).  :class:`UserPopulation` draws a population of such profiles and can
roll the population forward one day (bandwidth regression to the mean plus
tolerance drift, Figure 5a).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence

import numpy as np

from repro.sim.bandwidth import (
    BandwidthTrace,
    MarkovTraceGenerator,
    MixedTraceGenerator,
    StationaryTraceGenerator,
)
from repro.users.engagement import BaselineExitModel, QoSAwareExitModel
from repro.users.perception import StallSensitivityProfile, sample_profile


@dataclass(frozen=True)
class UserProfile:
    """Everything needed to simulate one user."""

    user_id: str
    mean_bandwidth_kbps: float
    bursty: bool
    sensitivity: StallSensitivityProfile
    sessions_per_day: int
    base_hazard: float

    def __post_init__(self) -> None:
        if self.mean_bandwidth_kbps <= 0:
            raise ValueError("mean_bandwidth_kbps must be positive")
        if self.sessions_per_day <= 0:
            raise ValueError("sessions_per_day must be positive")
        if not 0 < self.base_hazard < 1:
            raise ValueError("base_hazard must be in (0, 1)")

    def exit_model(self) -> QoSAwareExitModel:
        """Behavioural exit model for this user."""
        return QoSAwareExitModel(
            profile=self.sensitivity,
            baseline=BaselineExitModel(
                base_hazard=self.base_hazard,
                floor_hazard=min(0.008, self.base_hazard * 0.5),
            ),
        )

    def bandwidth_trace(
        self, length: int, rng: np.random.Generator, name: str | None = None
    ) -> BandwidthTrace:
        """Generate a bandwidth trace in this user's network regime."""
        if self.bursty:
            generator = MarkovTraceGenerator(
                good_mean_kbps=self.mean_bandwidth_kbps * 1.2,
                bad_mean_kbps=max(self.mean_bandwidth_kbps * 0.35, 50.0),
                good_std_kbps=self.mean_bandwidth_kbps * 0.25,
                bad_std_kbps=self.mean_bandwidth_kbps * 0.12,
            )
        else:
            generator = StationaryTraceGenerator(
                self.mean_bandwidth_kbps, self.mean_bandwidth_kbps * 0.25
            )
        return generator.generate(length, rng, name=name or f"{self.user_id}_trace")

    def next_day(self, rng: np.random.Generator) -> "UserProfile":
        """Profile for the next simulated day (tolerance drift + mild bandwidth wobble)."""
        new_bandwidth = float(
            max(self.mean_bandwidth_kbps * rng.normal(1.0, 0.05), 50.0)
        )
        return replace(
            self,
            mean_bandwidth_kbps=new_bandwidth,
            sensitivity=self.sensitivity.drifted(rng),
        )


class UserPopulation:
    """A heterogeneous population of :class:`UserProfile` objects."""

    def __init__(self, profiles: Sequence[UserProfile]) -> None:
        if not profiles:
            raise ValueError("a population needs at least one user")
        self._profiles = list(profiles)

    @classmethod
    def generate(
        cls,
        num_users: int,
        seed: int = 0,
        bandwidth_median_kbps: float = 8000.0,
        bandwidth_sigma_log: float = 0.9,
        burst_fraction: float = 0.3,
    ) -> "UserPopulation":
        """Draw ``num_users`` profiles from the population distributions."""
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        rng = np.random.default_rng(seed)
        mixture = MixedTraceGenerator(
            median_kbps=bandwidth_median_kbps,
            sigma_log=bandwidth_sigma_log,
            burst_fraction=burst_fraction,
        )
        profiles = []
        for i in range(num_users):
            profiles.append(
                UserProfile(
                    user_id=f"u{i:05d}",
                    mean_bandwidth_kbps=mixture.sample_user_mean(rng),
                    bursty=bool(rng.random() < burst_fraction),
                    sensitivity=sample_profile(rng),
                    sessions_per_day=int(rng.integers(3, 15)),
                    base_hazard=float(np.clip(rng.normal(0.02, 0.008), 0.004, 0.06)),
                )
            )
        return cls(profiles)

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[UserProfile]:
        return iter(self._profiles)

    def __getitem__(self, index: int) -> UserProfile:
        return self._profiles[index]

    @property
    def profiles(self) -> Sequence[UserProfile]:
        """All user profiles."""
        return tuple(self._profiles)

    def mean_bandwidths(self) -> np.ndarray:
        """Vector of per-user long-run mean bandwidths (kbps)."""
        return np.asarray([p.mean_bandwidth_kbps for p in self._profiles])

    def low_bandwidth_users(self, threshold_kbps: float = 2000.0) -> list[UserProfile]:
        """Users in the long-tail bandwidth regime the paper focuses on (§5.4)."""
        return [p for p in self._profiles if p.mean_bandwidth_kbps < threshold_kbps]

    def shards(self, num_shards: int) -> list[list[UserProfile]]:
        """Deterministic round-robin sharding of the population.

        Shard ``i`` receives profiles ``i, i + n, i + 2n, …`` — independent of
        worker scheduling, so a fleet run is reproducible for a given seed and
        shard count.  Shards may be empty when ``num_shards`` exceeds the
        population size.
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        return [list(self._profiles[i::num_shards]) for i in range(num_shards)]

    def split(self, fraction: float, seed: int = 0) -> tuple["UserPopulation", "UserPopulation"]:
        """Randomly split the population (e.g. experimental vs control group)."""
        if not 0 < fraction < 1:
            raise ValueError("fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        indices = rng.permutation(len(self._profiles))
        cut = max(1, min(len(self._profiles) - 1, int(round(fraction * len(self._profiles)))))
        first = [self._profiles[i] for i in indices[:cut]]
        second = [self._profiles[i] for i in indices[cut:]]
        return UserPopulation(first), UserPopulation(second)

    def next_day(self, rng: np.random.Generator) -> "UserPopulation":
        """Population after one day of drift."""
        return UserPopulation([p.next_day(rng) for p in self._profiles])
