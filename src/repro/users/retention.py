"""Engagement-driven retention: does today's QoE bring the user back tomorrow?

The paper's central claim is *longitudinal*: ABR decisions change long-term
engagement, not just the current session.  This module closes that loop for
the multi-day fleet (:mod:`repro.fleet.longitudinal`): a user's simulated day
is reduced to an :class:`EngagementSummary` (watch fraction, stalls, early
exits), and a :class:`RetentionModel` maps that summary to the probability
that the user shows up again the next day.  Two variants mirror the exit-model
families of :mod:`repro.users.engagement`:

* :class:`RuleBasedRetentionModel` — interpretable rules: a base return rate,
  eroded by stalls and abandoned sessions, boosted by completed watch time,
  with a separate comeback rate for users who lapsed (did not play today).
* :class:`DataDrivenRetentionModel` — a logistic model over the summary's
  feature vector, fitted from observed ``(summary, returned)`` histories with
  :func:`fit_retention_model` (same full-batch GD as the data-driven exit
  users).

Both models are pure functions of the summary — all randomness (the actual
arrival coin flip) stays in the campaign layer, keyed per ``(seed, user,
day)`` so longitudinal runs are deterministic and sharding-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

import numpy as np


@dataclass(frozen=True)
class EngagementSummary:
    """One user's engagement outcome over one simulated day."""

    num_sessions: int
    #: Mean fraction of video duration actually watched across sessions.
    mean_watch_fraction: float
    #: Fraction of the day's sessions abandoned before the video ended.
    exit_fraction: float
    total_stall_time_s: float
    stall_count: int
    mean_bitrate_kbps: float
    total_watch_time_s: float

    def __post_init__(self) -> None:
        if self.num_sessions <= 0:
            raise ValueError("a summary needs at least one session")
        if not 0.0 <= self.exit_fraction <= 1.0:
            raise ValueError("exit_fraction must be in [0, 1]")

    def as_features(self) -> np.ndarray:
        """Feature vector for data-driven retention models.

        Features: [sessions, mean watch fraction, exit fraction, stall time
        (s), stall count, mean bitrate (Mbps), watch time (min)].
        """
        return np.asarray(
            [
                float(self.num_sessions),
                self.mean_watch_fraction,
                self.exit_fraction,
                self.total_stall_time_s,
                float(self.stall_count),
                self.mean_bitrate_kbps / 1000.0,
                self.total_watch_time_s / 60.0,
            ],
            dtype=float,
        )

    def as_payload(self) -> dict:
        """Plain-dict view (telemetry payload)."""
        return {
            "num_sessions": int(self.num_sessions),
            "mean_watch_fraction": float(self.mean_watch_fraction),
            "exit_fraction": float(self.exit_fraction),
            "total_stall_time_s": float(self.total_stall_time_s),
            "stall_count": int(self.stall_count),
            "mean_bitrate_kbps": float(self.mean_bitrate_kbps),
            "total_watch_time_s": float(self.total_watch_time_s),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "EngagementSummary":
        """Inverse of :meth:`as_payload`."""
        return cls(
            num_sessions=int(payload["num_sessions"]),
            mean_watch_fraction=float(payload["mean_watch_fraction"]),
            exit_fraction=float(payload["exit_fraction"]),
            total_stall_time_s=float(payload["total_stall_time_s"]),
            stall_count=int(payload["stall_count"]),
            mean_bitrate_kbps=float(payload["mean_bitrate_kbps"]),
            total_watch_time_s=float(payload["total_watch_time_s"]),
        )


def summarize_sessions(sessions: Iterable) -> EngagementSummary:
    """Reduce one user's :class:`~repro.analytics.logs.SessionLog` day.

    Accepts any iterable of objects exposing the session-log surface
    (``trace`` with ``watch_time``/``video_duration``, ``exited_early``,
    ``total_stall_time``, ``stall_count``).  All statistics are simple sums
    and means in session order, so identical traces produce bit-identical
    summaries regardless of backend.
    """
    sessions = list(sessions)
    if not sessions:
        raise ValueError("summarize_sessions needs at least one session")
    watch_fractions = []
    bitrates = []
    num_segments = 0
    exits = 0
    stall_time = 0.0
    stall_count = 0
    watch_time = 0.0
    for session in sessions:
        trace = session.trace
        duration = trace.video_duration
        watch_fractions.append(
            trace.watch_time / duration if duration > 0 else 0.0
        )
        if len(trace):
            bitrates.append(float(trace.bitrates_kbps.sum()))
            num_segments += len(trace)
        exits += int(trace.exited_early)
        stall_time += trace.total_stall_time
        stall_count += trace.stall_count
        watch_time += trace.watch_time
    return EngagementSummary(
        num_sessions=len(sessions),
        mean_watch_fraction=float(np.mean(watch_fractions)),
        exit_fraction=exits / len(sessions),
        total_stall_time_s=float(stall_time),
        stall_count=int(stall_count),
        mean_bitrate_kbps=float(sum(bitrates) / num_segments) if num_segments else 0.0,
        total_watch_time_s=float(watch_time),
    )


class RetentionModel(Protocol):
    """Maps a day's engagement outcome to a next-day arrival probability.

    ``summary=None`` means the user did not play today (they had already
    churned or their arrival coin came up tails); the model decides how
    likely a lapsed user is to come back.
    """

    def return_probability(self, summary: EngagementSummary | None) -> float:
        """Probability the user arrives on the next simulated day."""
        ...


@dataclass(frozen=True)
class RuleBasedRetentionModel:
    """Interpretable retention rules (the §5.2 analogue for churn).

    Starting from ``base_return``, each stall event erodes the return
    probability by ``stall_penalty`` (capped at ``max_stall_penalty``),
    abandoning sessions erodes it by up to ``exit_penalty``, and actually
    finishing videos earns back up to ``watch_bonus``.  Users who lapsed
    return with ``lapse_return`` — churn is sticky but not absorbing, so
    DAU can recover.
    """

    base_return: float = 0.88
    stall_penalty: float = 0.03
    max_stall_penalty: float = 0.35
    exit_penalty: float = 0.25
    watch_bonus: float = 0.08
    lapse_return: float = 0.25
    floor: float = 0.05
    ceiling: float = 0.995

    def __post_init__(self) -> None:
        if not 0.0 <= self.floor <= self.ceiling <= 1.0:
            raise ValueError("need 0 <= floor <= ceiling <= 1")
        if not 0.0 <= self.base_return <= 1.0 or not 0.0 <= self.lapse_return <= 1.0:
            raise ValueError("base_return and lapse_return must be in [0, 1]")

    def return_probability(self, summary: EngagementSummary | None) -> float:
        if summary is None:
            return self.lapse_return
        probability = self.base_return
        probability -= min(
            self.stall_penalty * summary.stall_count, self.max_stall_penalty
        )
        probability -= self.exit_penalty * summary.exit_fraction
        probability += self.watch_bonus * summary.mean_watch_fraction
        return float(min(max(probability, self.floor), self.ceiling))


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


@dataclass(frozen=True)
class DataDrivenRetentionModel:
    """Logistic retention model fitted from observed return behaviour."""

    weights: np.ndarray
    bias: float
    feature_scale: np.ndarray
    lapse_return: float = 0.25

    def return_probability(self, summary: EngagementSummary | None) -> float:
        if summary is None:
            return self.lapse_return
        x = summary.as_features() / self.feature_scale
        return float(_sigmoid(np.asarray([x @ self.weights + self.bias]))[0])


def fit_retention_model(
    summaries: Sequence[EngagementSummary],
    returned: Sequence[bool],
    learning_rate: float = 0.2,
    epochs: int = 300,
    l2: float = 1e-3,
    lapse_return: float = 0.25,
) -> DataDrivenRetentionModel:
    """Fit a :class:`DataDrivenRetentionModel` by logistic regression.

    ``summaries`` are observed user-days; ``returned[i]`` is whether that
    user showed up the following day.  Class-reweighted full-batch gradient
    descent, mirroring :func:`repro.users.engagement.fit_data_driven_user`.
    """
    if len(summaries) != len(returned):
        raise ValueError("summaries and returned must have the same length")
    if not summaries:
        raise ValueError("need at least one observation")
    features = np.stack([s.as_features() for s in summaries])
    labels = np.asarray(returned, dtype=float)
    # Constant columns carry no signal; scale them by their magnitude (not a
    # tiny epsilon) so they stay O(1) instead of exploding the gradients.
    std = np.std(features, axis=0)
    scale = np.where(
        std > 1e-9, std, np.maximum(np.abs(features).max(axis=0), 1.0)
    )
    x = features / scale
    n, d = x.shape
    weights = np.zeros(d)
    bias = 0.0
    positive = max(labels.sum(), 1.0)
    negative = max(n - labels.sum(), 1.0)
    sample_weight = np.where(labels > 0.5, n / (2.0 * positive), n / (2.0 * negative))
    for _ in range(epochs):
        predictions = _sigmoid(x @ weights + bias)
        error = (predictions - labels) * sample_weight
        grad_w = x.T @ error / n + l2 * weights
        grad_b = float(np.mean(error))
        weights -= learning_rate * grad_w
        bias -= learning_rate * grad_b
    return DataDrivenRetentionModel(
        weights=weights, bias=float(bias), feature_scale=scale, lapse_return=lapse_return
    )
