"""Network containers: ``Sequential`` and the branched architecture of Figure 7."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Conv1D, Dense, Flatten, Layer, ReLU
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.optimizers import Adam


class Sequential:
    """A plain stack of layers with forward/backward and a classifier head."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("need at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run all layers in order."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate through all layers in reverse order."""
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    @property
    def parameters(self) -> list[np.ndarray]:
        """All trainable parameters, layer by layer."""
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters)
        return params

    @property
    def gradients(self) -> list[np.ndarray]:
        """All gradients, aligned with :attr:`parameters`."""
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients)
        return grads

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        return softmax(self.forward(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Argmax class predictions."""
        return np.argmax(self.forward(x), axis=1)


class MultiBranchNetwork:
    """The exit-predictor architecture of Figure 7.

    One Conv1D(1 → ``channels``, ``kernel_size``) + ReLU branch per input
    feature row, flattened and merged, followed by a ``hidden``-unit fully
    connected layer and a final ``num_classes`` output layer.

    Input shape: ``(batch, num_features, length)`` — the paper uses 5 features
    (bitrate, throughput, stall time, stall interval, stall-exit interval)
    over a length-8 window.
    """

    def __init__(
        self,
        num_features: int = 5,
        length: int = 8,
        channels: int = 64,
        kernel_size: int = 4,
        hidden: int = 64,
        num_classes: int = 2,
        seed: int = 0,
    ) -> None:
        if num_features <= 0 or length <= 0:
            raise ValueError("num_features and length must be positive")
        if kernel_size > length:
            raise ValueError("kernel_size cannot exceed the window length")
        self.num_features = num_features
        self.length = length
        self.branches: list[Sequential] = []
        for i in range(num_features):
            self.branches.append(
                Sequential(
                    [
                        Conv1D(1, channels, kernel_size, seed=seed + i),
                        ReLU(),
                        Flatten(),
                    ]
                )
            )
        branch_width = channels * (length - kernel_size + 1)
        self.head = Sequential(
            [
                Dense(branch_width * num_features, hidden, seed=seed + 100),
                ReLU(),
                Dense(hidden, num_classes, seed=seed + 200),
            ]
        )
        self._branch_width = branch_width

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits of shape (batch, num_classes)."""
        if x.ndim != 3 or x.shape[1] != self.num_features or x.shape[2] != self.length:
            raise ValueError(
                f"expected input (batch, {self.num_features}, {self.length}), got {x.shape}"
            )
        merged = [
            branch.forward(x[:, i : i + 1, :]) for i, branch in enumerate(self.branches)
        ]
        return self.head.forward(np.concatenate(merged, axis=1))

    def backward(self, grad_output: np.ndarray) -> None:
        """Back-propagate into every branch."""
        grad_merged = self.head.backward(grad_output)
        for i, branch in enumerate(self.branches):
            start = i * self._branch_width
            branch.backward(grad_merged[:, start : start + self._branch_width])

    @property
    def parameters(self) -> list[np.ndarray]:
        """All trainable parameters."""
        params: list[np.ndarray] = []
        for branch in self.branches:
            params.extend(branch.parameters)
        params.extend(self.head.parameters)
        return params

    @property
    def gradients(self) -> list[np.ndarray]:
        """All gradients, aligned with :attr:`parameters`."""
        grads: list[np.ndarray] = []
        for branch in self.branches:
            grads.extend(branch.gradients)
        grads.extend(self.head.gradients)
        return grads

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        return softmax(self.forward(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Argmax class predictions."""
        return np.argmax(self.forward(x), axis=1)

    def fit(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        epochs: int = 20,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        seed: int = 0,
        verbose: bool = False,
    ) -> list[float]:
        """Train with Adam on softmax cross-entropy; returns per-epoch losses."""
        if x.shape[0] != np.asarray(labels).shape[0]:
            raise ValueError("x and labels must have the same number of rows")
        optimizer = Adam(learning_rate=learning_rate)
        loss_fn = SoftmaxCrossEntropy()
        rng = np.random.default_rng(seed)
        losses = []
        n = x.shape[0]
        labels = np.asarray(labels)
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                logits = self.forward(x[idx])
                loss = loss_fn.forward(logits, labels[idx])
                self.backward(loss_fn.backward())
                optimizer.step(self.parameters, self.gradients)
                epoch_loss += loss
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
            if verbose:
                print(f"epoch {epoch + 1}/{epochs} loss={losses[-1]:.4f}")
        return losses
