"""Minimal neural-network framework (pure numpy).

The exit-rate predictor (§3.3) and the Pensieve baseline both need small
neural networks; since the reproduction is restricted to numpy/scipy, this
package implements the required pieces from scratch:

* :mod:`repro.nn.layers` — Dense, Conv1D, ReLU, Flatten, Concatenate.
* :mod:`repro.nn.losses` — softmax cross-entropy and mean squared error.
* :mod:`repro.nn.optimizers` — SGD (with momentum) and Adam.
* :mod:`repro.nn.network` — ``Sequential`` container and a branched
  ``MultiBranchNetwork`` (one Conv1D branch per input feature, merged into a
  fully-connected head — the architecture of Figure 7).
* :mod:`repro.nn.metrics` — accuracy / precision / recall / F1.
* :mod:`repro.nn.sampling` — stratified split and balanced undersampling
  (the class-balancing step of §3.3).
"""

from repro.nn.layers import Dense, Conv1D, ReLU, Flatten, Layer
from repro.nn.losses import SoftmaxCrossEntropy, MeanSquaredError
from repro.nn.optimizers import SGD, Adam
from repro.nn.network import Sequential, MultiBranchNetwork
from repro.nn.metrics import (
    accuracy_score,
    precision_score,
    recall_score,
    f1_score,
    confusion_matrix,
    classification_report,
)
from repro.nn.sampling import balanced_undersample, stratified_split

__all__ = [
    "Layer",
    "Dense",
    "Conv1D",
    "ReLU",
    "Flatten",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "SGD",
    "Adam",
    "Sequential",
    "MultiBranchNetwork",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "classification_report",
    "balanced_undersample",
    "stratified_split",
]
