"""Binary / multi-class classification metrics.

The paper evaluates the exit-rate predictor with accuracy, precision, recall
and F1 (Figures 8b and 9).  The positive class for the exit predictor is
"exit" (label 1).
"""

from __future__ import annotations

import numpy as np


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).astype(int).ravel()
    y_pred = np.asarray(y_pred).astype(int).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if y_true.size == 0:
        raise ValueError("metrics need at least one sample")
    return y_true, y_pred


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int = 2) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of true class ``i`` predicted ``j``."""
    y_true, y_pred = _validate(y_true, y_pred)
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[t, p] += 1
    return matrix


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Precision of the positive class (0 when nothing is predicted positive)."""
    y_true, y_pred = _validate(y_true, y_pred)
    predicted_positive = np.sum(y_pred == positive)
    if predicted_positive == 0:
        return 0.0
    true_positive = np.sum((y_pred == positive) & (y_true == positive))
    return float(true_positive / predicted_positive)


def recall_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Recall of the positive class (0 when there are no positives)."""
    y_true, y_pred = _validate(y_true, y_pred)
    actual_positive = np.sum(y_true == positive)
    if actual_positive == 0:
        return 0.0
    true_positive = np.sum((y_pred == positive) & (y_true == positive))
    return float(true_positive / actual_positive)


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(y_true, y_pred, positive)
    recall = recall_score(y_true, y_pred, positive)
    if precision + recall == 0:
        return 0.0
    return float(2 * precision * recall / (precision + recall))


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, float]:
    """All four headline metrics in one dict."""
    return {
        "accuracy": accuracy_score(y_true, y_pred),
        "precision": precision_score(y_true, y_pred),
        "recall": recall_score(y_true, y_pred),
        "f1": f1_score(y_true, y_pred),
    }
