"""Loss functions."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift for numerical stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Softmax activation fused with cross-entropy loss (Equation 5).

    ``forward`` takes raw logits of shape (batch, classes) and integer labels
    (or one-hot rows); ``backward`` returns the gradient with respect to the
    logits, already averaged over the batch.
    """

    def __init__(self) -> None:
        self._probabilities: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    @staticmethod
    def _to_one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
        if labels.ndim == 2:
            return labels.astype(float)
        one_hot = np.zeros((labels.shape[0], num_classes))
        one_hot[np.arange(labels.shape[0]), labels.astype(int)] = 1.0
        return one_hot

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy of the batch."""
        probabilities = softmax(logits)
        one_hot = self._to_one_hot(np.asarray(labels), logits.shape[1])
        if one_hot.shape != logits.shape:
            raise ValueError("labels do not match logits shape")
        self._probabilities = probabilities
        self._labels = one_hot
        eps = 1e-12
        return float(-np.mean(np.sum(one_hot * np.log(probabilities + eps), axis=1)))

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._probabilities is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        batch = self._probabilities.shape[0]
        return (self._probabilities - self._labels) / batch

    @property
    def probabilities(self) -> np.ndarray:
        """Softmax probabilities from the last forward pass."""
        if self._probabilities is None:
            raise RuntimeError("no forward pass yet")
        return self._probabilities


class MeanSquaredError:
    """Plain mean squared error (used by the Pensieve critic)."""

    def __init__(self) -> None:
        self._difference: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean squared error of the batch."""
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError("predictions and targets must have the same shape")
        self._difference = predictions - targets
        return float(np.mean(self._difference**2))

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the predictions."""
        if self._difference is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._difference / self._difference.size
