"""Dataset splitting and class balancing.

§3.3: "binary classification of the training set based on user engagement,
followed by random undersampling of the majority class (continued watch) to
achieve parity with the minority class (exits)".
"""

from __future__ import annotations

import numpy as np


def stratified_split(
    x: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split into train/test keeping the class ratio in both parts.

    Returns ``(x_train, y_train, x_test, y_test)``.
    """
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    labels = np.asarray(labels).astype(int).ravel()
    if x.shape[0] != labels.shape[0]:
        raise ValueError("x and labels must have the same number of rows")
    rng = np.random.default_rng(seed)
    train_idx: list[int] = []
    test_idx: list[int] = []
    for cls in np.unique(labels):
        cls_indices = np.flatnonzero(labels == cls)
        rng.shuffle(cls_indices)
        cut = int(round(len(cls_indices) * test_fraction))
        test_idx.extend(cls_indices[:cut].tolist())
        train_idx.extend(cls_indices[cut:].tolist())
    train = np.asarray(train_idx, dtype=int)
    test = np.asarray(test_idx, dtype=int)
    rng.shuffle(train)
    rng.shuffle(test)
    return x[train], labels[train], x[test], labels[test]


def balanced_undersample(
    x: np.ndarray, labels: np.ndarray, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Randomly undersample the majority class to match the minority class."""
    labels = np.asarray(labels).astype(int).ravel()
    if x.shape[0] != labels.shape[0]:
        raise ValueError("x and labels must have the same number of rows")
    classes, counts = np.unique(labels, return_counts=True)
    if classes.size < 2:
        return x, labels
    rng = np.random.default_rng(seed)
    target = counts.min()
    keep: list[int] = []
    for cls in classes:
        cls_indices = np.flatnonzero(labels == cls)
        chosen = rng.choice(cls_indices, size=target, replace=False)
        keep.extend(chosen.tolist())
    keep_arr = np.asarray(keep, dtype=int)
    rng.shuffle(keep_arr)
    return x[keep_arr], labels[keep_arr]
