"""Differentiable layers (forward / backward with cached activations).

Shapes follow a channels-first convention for sequences:

* Dense: input ``(batch, features)``.
* Conv1D: input ``(batch, in_channels, length)``, output
  ``(batch, out_channels, length - kernel_size + 1)`` (valid convolution).
"""

from __future__ import annotations

import abc

import numpy as np


class Layer(abc.ABC):
    """Base class: a layer owns parameters, gradients and a cached input."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output and cache what backward needs."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and accumulate parameter gradients."""

    @property
    def parameters(self) -> list[np.ndarray]:
        """Trainable parameter arrays (may be empty)."""
        return []

    @property
    def gradients(self) -> list[np.ndarray]:
        """Gradients matching :attr:`parameters` (same order)."""
        return []


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        rng = np.random.default_rng(seed)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weights = rng.uniform(-limit, limit, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weights.shape[0]:
            raise ValueError(
                f"expected input of shape (batch, {self.weights.shape[0]}), got {x.shape}"
            )
        self._input = x
        return x @ self.weights + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.grad_weights = self._input.T @ grad_output
        self.grad_bias = grad_output.sum(axis=0)
        return grad_output @ self.weights.T

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.weights, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weights, self.grad_bias]


class Conv1D(Layer):
    """Valid 1-D convolution over ``(batch, in_channels, length)`` inputs."""

    def __init__(
        self, in_channels: int, out_channels: int, kernel_size: int, seed: int = 0
    ) -> None:
        if min(in_channels, out_channels, kernel_size) <= 0:
            raise ValueError("channels and kernel_size must be positive")
        rng = np.random.default_rng(seed)
        fan_in = in_channels * kernel_size
        limit = np.sqrt(6.0 / (fan_in + out_channels))
        self.kernel = rng.uniform(
            -limit, limit, size=(out_channels, in_channels, kernel_size)
        )
        self.bias = np.zeros(out_channels)
        self.grad_kernel = np.zeros_like(self.kernel)
        self.grad_bias = np.zeros_like(self.bias)
        self.kernel_size = kernel_size
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[1] != self.kernel.shape[1]:
            raise ValueError(
                f"expected input (batch, {self.kernel.shape[1]}, length), got {x.shape}"
            )
        if x.shape[2] < self.kernel_size:
            raise ValueError("input length shorter than the kernel")
        self._input = x
        batch, _, length = x.shape
        out_length = length - self.kernel_size + 1
        # Build sliding windows: (batch, in_channels, out_length, kernel_size)
        windows = np.lib.stride_tricks.sliding_window_view(x, self.kernel_size, axis=2)
        # Contract in_channels and kernel dims against the kernel.
        output = np.einsum("bclk,ock->bol", windows, self.kernel) + self.bias[None, :, None]
        self._windows = windows
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        batch, in_channels, length = x.shape
        out_length = length - self.kernel_size + 1
        if grad_output.shape != (batch, self.kernel.shape[0], out_length):
            raise ValueError("grad_output shape mismatch")
        self.grad_kernel = np.einsum("bol,bclk->ock", grad_output, self._windows)
        self.grad_bias = grad_output.sum(axis=(0, 2))
        grad_input = np.zeros_like(x)
        for offset in range(self.kernel_size):
            # Each kernel tap contributes to a shifted slice of the input grad.
            grad_input[:, :, offset : offset + out_length] += np.einsum(
                "bol,oc->bcl", grad_output, self.kernel[:, :, offset]
            )
        return grad_input

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.kernel, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_kernel, self.grad_bias]


class ReLU(Layer):
    """Element-wise rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Flatten(Layer):
    """Flatten everything but the batch dimension."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._shape)
