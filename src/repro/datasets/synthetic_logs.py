"""Synthetic production-log generation.

The paper's §2 analyses and the exit-predictor training set come from
production logs that are proprietary; this module produces a synthetic corpus
with the same schema and the same qualitative structure by simulating every
user of a :class:`~repro.users.population.UserPopulation` for a number of
days: each user plays several sessions per day over traces drawn from their
own bandwidth regime, with a production ABR (HYB by default) choosing
bitrates and their personal :class:`~repro.users.engagement.QoSAwareExitModel`
deciding when they abandon a video.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.abr.base import ABRAlgorithm
from repro.abr.hyb import HYB
from repro.analytics.logs import LogCollection, SessionLog
from repro.net.topology import NetworkTopology, get_topology
from repro.sim.backend import SessionSpec, get_backend
from repro.sim.session import PlaybackSession, SessionConfig
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation, UserProfile


@dataclass
class LogGenerationConfig:
    """Knobs of the synthetic log generator."""

    days: int = 1
    sessions_per_user_per_day: int | None = None
    trace_length: int = 200
    seed: int = 0
    session_config: SessionConfig = field(default_factory=SessionConfig)
    #: Simulation backend.  ``"scalar"`` keeps the historical shared-RNG
    #: loop; other backends run the whole corpus as one spec batch with
    #: per-session RNG substreams (same schema, different random routing).
    backend: str = "scalar"
    #: Shared-bottleneck topology (name or instance): each day's corpus runs
    #: as one coupled batch whose sessions fair-share edge-link capacity, so
    #: the generated logs carry *emergent* congestion.  ``None`` keeps the
    #: classic uncoupled traces.
    network: str | NetworkTopology | None = None

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        get_topology(self.network)  # fail fast on unknown topology names
        if self.sessions_per_user_per_day is not None and self.sessions_per_user_per_day <= 0:
            raise ValueError("sessions_per_user_per_day must be positive")


def generate_production_logs(
    population: UserPopulation,
    library: VideoLibrary,
    config: LogGenerationConfig | None = None,
    abr_factory: Callable[[UserProfile], ABRAlgorithm] | None = None,
) -> LogCollection:
    """Simulate the population and return the resulting log corpus.

    ``abr_factory`` builds the ABR used for a given user (defaults to a HYB
    instance with production-default parameters, the paper's baseline); it is
    called once per user per day so experiments can inject per-user or
    per-group algorithms (e.g. LingXi-wrapped ones).
    """
    config = config or LogGenerationConfig()
    abr_factory = abr_factory or (lambda _profile: HYB())
    rng = np.random.default_rng(config.seed)
    if config.backend != "scalar" or config.network is not None:
        # Networked corpora are coupled batches by definition, so they route
        # through the spec-batched path no matter which backend executes it.
        return _generate_logs_batched(population, library, config, abr_factory, rng)
    session_engine = PlaybackSession(config.session_config)

    sessions: list[SessionLog] = []
    day_population = population
    for day in range(config.days):
        for profile in day_population:
            abr = abr_factory(profile)
            exit_model = profile.exit_model()
            num_sessions = (
                config.sessions_per_user_per_day
                if config.sessions_per_user_per_day is not None
                else profile.sessions_per_day
            )
            trace = profile.bandwidth_trace(config.trace_length, rng)
            for session_index in range(num_sessions):
                video = library.sample(rng)
                playback = session_engine.run(
                    abr,
                    video,
                    trace,
                    exit_model=exit_model,
                    rng=rng,
                    user_id=profile.user_id,
                )
                sessions.append(
                    SessionLog(
                        user_id=profile.user_id,
                        day=day,
                        session_index=session_index,
                        trace=playback,
                        mean_bandwidth_kbps=profile.mean_bandwidth_kbps,
                    )
                )
        day_population = day_population.next_day(rng)
    return LogCollection(sessions)


def _generate_logs_batched(
    population: UserPopulation,
    library: VideoLibrary,
    config: LogGenerationConfig,
    abr_factory: Callable[[UserProfile], ABRAlgorithm],
    rng: np.random.Generator,
) -> LogCollection:
    """Backend-routed corpus generation: the whole corpus as one spec batch.

    Traces, videos and population drift consume ``rng`` in the same per-user
    sequence as the scalar loop, but without the per-segment exit draws
    interleaved (those move to per-session RNG substreams), so the concrete
    corpus differs from a ``backend="scalar"`` run of the same seed.  The
    substreams let the backend execute the batch in any order (the vector
    backend advances every vectorizable session in lockstep).

    Each simulated day runs as its own batch: one day of a large population
    is plenty of lockstep width for the vector engine, while bounding peak
    memory (the engine preallocates per-session record arrays per batch).
    """
    backend = get_backend(config.backend)
    network = get_topology(config.network)
    seed_root = np.random.SeedSequence(config.seed)
    sessions: list[SessionLog] = []
    day_population = population
    for day in range(config.days):
        specs: list[SessionSpec] = []
        metas: list[tuple[str, int, int, float]] = []
        for profile in day_population:
            abr = abr_factory(profile)
            exit_model = profile.exit_model()
            num_sessions = (
                config.sessions_per_user_per_day
                if config.sessions_per_user_per_day is not None
                else profile.sessions_per_day
            )
            trace = profile.bandwidth_trace(config.trace_length, rng)
            for session_index in range(num_sessions):
                video = library.sample(rng)
                specs.append(
                    SessionSpec(
                        abr=abr,
                        video=video,
                        trace=trace,
                        exit_model=exit_model,
                        seed=seed_root.spawn(1)[0],
                        user_id=profile.user_id,
                    )
                )
                metas.append(
                    (profile.user_id, day, session_index, profile.mean_bandwidth_kbps)
                )
        playbacks = backend.run_batch(specs, config.session_config, network=network)
        sessions.extend(SessionLog.zip_with_playbacks(metas, playbacks))
        day_population = day_population.next_day(rng)
    return LogCollection(sessions)
