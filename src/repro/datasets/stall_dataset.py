"""Exit-rate-predictor datasets (§3.3).

Each training sample is a 5×8 feature matrix built from the last eight
segments before a decision point, matching Figure 7:

* row 0 — bitrate (Mbps) of the last eight segments;
* row 1 — throughput (Mbps) of the last eight downloads;
* row 2 — cumulative session stall time (seconds) at each of the last eight
  segments ("past stall time");
* row 3 — segments elapsed since the previous stall ("stall interval");
* row 4 — the user's personal tolerance estimate: the average cumulative
  stall time at which they exited in the past, or — while they have never
  exited on a stall — the largest cumulative stall they are known to have
  sat through.  This is the long-term engagement state derived from the
  user's stall / stall-exit history that personalises the predictor.

The label is 1 when the user exited at that segment or the next one (the same
"exit at the current or next video segment" attribution the paper uses for
stall-exit rates in §5.5), 0 otherwise.  Three dataset compositions mirror
Figure 9(a): ``ALL`` keeps every segment, ``EVENT`` keeps segments with a
stall or a quality switch, ``STALL`` keeps only stalled segments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.analytics.logs import LogCollection

WINDOW_LENGTH = 8
NUM_FEATURES = 5

_BITRATE_SCALE = 1000.0  # kbps -> Mbps
_THROUGHPUT_SCALE = 1000.0
_STALL_CUMULATIVE_SCALE = 10.0
_RECENCY_SCALE = 16.0
_LONG_TERM_SCALE = 512.0
#: Tolerance prior (seconds) used until a user has any stall-exit history.
DEFAULT_TOLERANCE_PRIOR_S = 4.0


def estimate_tolerance(
    stall_exit_time_sum: float,
    stall_exit_count: int,
    max_survived_stall_s: float,
    prior_s: float = DEFAULT_TOLERANCE_PRIOR_S,
) -> float:
    """Personal stall-tolerance estimate from a user's engagement history.

    Users who have exited on stalls before are summarised by the average
    cumulative stall time at those exits; users who never have are summarised
    by the largest cumulative stall they are known to have tolerated (at least
    the population prior).
    """
    if stall_exit_count > 0:
        return stall_exit_time_sum / stall_exit_count
    return max(max_survived_stall_s, prior_s)


class DatasetComposition(str, enum.Enum):
    """Which segments become training samples (Figure 9a)."""

    ALL = "all"
    EVENT = "event"
    STALL = "stall"


@dataclass(frozen=True)
class ExitDataset:
    """Feature/label matrices for the exit-rate predictor.

    ``user_ids`` and ``stall_ordinals`` are optional per-sample metadata:
    the user a sample came from, and how many stall events that user had
    already accumulated before it (used by the trigger-threshold analysis of
    Figure 8b).
    """

    features: np.ndarray  # (n, NUM_FEATURES, WINDOW_LENGTH)
    labels: np.ndarray  # (n,), 1 = exit
    composition: DatasetComposition
    user_ids: tuple[str, ...] = ()
    stall_ordinals: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.features.ndim != 3 or self.features.shape[1:] != (NUM_FEATURES, WINDOW_LENGTH):
            raise ValueError(
                f"features must be (n, {NUM_FEATURES}, {WINDOW_LENGTH}), got {self.features.shape}"
            )
        if self.labels.shape != (self.features.shape[0],):
            raise ValueError("labels must align with features")
        if self.user_ids and len(self.user_ids) != self.features.shape[0]:
            raise ValueError("user_ids must align with features")
        if self.stall_ordinals is not None and self.stall_ordinals.shape != self.labels.shape:
            raise ValueError("stall_ordinals must align with labels")

    def __len__(self) -> int:
        return int(self.features.shape[0])

    @property
    def exit_fraction(self) -> float:
        """Fraction of samples labelled as exits."""
        if len(self) == 0:
            return 0.0
        return float(np.mean(self.labels))

    def subset(self, indices: np.ndarray) -> "ExitDataset":
        """Dataset restricted to ``indices`` (metadata preserved when present)."""
        indices = np.asarray(indices, dtype=int)
        return ExitDataset(
            features=self.features[indices],
            labels=self.labels[indices],
            composition=self.composition,
            user_ids=tuple(self.user_ids[i] for i in indices) if self.user_ids else (),
            stall_ordinals=(
                self.stall_ordinals[indices] if self.stall_ordinals is not None else None
            ),
        )


def _history(values: list[float], scale: float) -> np.ndarray:
    window = np.zeros(WINDOW_LENGTH)
    recent = values[-WINDOW_LENGTH:]
    if recent:
        window[-len(recent) :] = np.asarray(recent) / scale
    return window


def build_exit_dataset(
    logs: LogCollection,
    composition: DatasetComposition = DatasetComposition.STALL,
) -> ExitDataset:
    """Build an :class:`ExitDataset` from a log corpus.

    Sessions are processed per user in chronological order so the long-term
    "segments since the last stall-induced exit" feature carries across
    sessions, as the paper's long-term engagement state does.
    """
    features: list[np.ndarray] = []
    labels: list[int] = []
    user_ids: list[str] = []
    stall_ordinals: list[int] = []

    for user, sessions in logs.group_by_user().items():
        ordered = sorted(sessions, key=lambda s: (s.day, s.session_index))
        stall_exit_time_sum = 0.0
        stall_exit_count = 0
        max_survived_stall = 0.0
        prior_stall_events = 0
        for session in ordered:
            bitrates: list[float] = []
            throughputs: list[float] = []
            cumulative_stalls: list[float] = []
            since_stall: list[float] = []
            segments_since_stall = float(WINDOW_LENGTH)
            records = session.records
            for index, record in enumerate(records):
                bitrates.append(record.bitrate_kbps)
                throughputs.append(record.bandwidth_kbps)
                cumulative_stalls.append(record.cumulative_stall_time)
                is_stall = record.stall_time > 0
                if is_stall:
                    segments_since_stall = 0.0
                else:
                    segments_since_stall += 1.0
                since_stall.append(segments_since_stall)
                # Tolerance is estimated from history *before* this event so
                # the feature stays causal.
                tolerance = estimate_tolerance(
                    stall_exit_time_sum, stall_exit_count, max_survived_stall
                )
                if is_stall and record.exited:
                    stall_exit_time_sum += record.cumulative_stall_time
                    stall_exit_count += 1
                elif not record.exited:
                    max_survived_stall = max(
                        max_survived_stall, record.cumulative_stall_time
                    )

                is_switch = (
                    len(bitrates) >= 2 and bitrates[-1] != bitrates[-2]
                )
                if composition is DatasetComposition.STALL and not is_stall:
                    continue
                if composition is DatasetComposition.EVENT and not (is_stall or is_switch):
                    continue

                # Exit attribution: this segment or the immediately next one.
                exited_soon = record.exited or (
                    index + 1 < len(records) and records[index + 1].exited
                )
                sample = np.vstack(
                    [
                        _history(bitrates, _BITRATE_SCALE),
                        _history(throughputs, _THROUGHPUT_SCALE),
                        _history(cumulative_stalls, _STALL_CUMULATIVE_SCALE),
                        _history(since_stall, _RECENCY_SCALE),
                        np.full(WINDOW_LENGTH, tolerance / _STALL_CUMULATIVE_SCALE),
                    ]
                )
                features.append(sample)
                labels.append(int(exited_soon))
                user_ids.append(user)
                stall_ordinals.append(prior_stall_events)
                if is_stall:
                    prior_stall_events += 1

    if not features:
        raise ValueError("the chosen composition produced no samples")
    return ExitDataset(
        features=np.asarray(features, dtype=float),
        labels=np.asarray(labels, dtype=int),
        composition=composition,
        user_ids=tuple(user_ids),
        stall_ordinals=np.asarray(stall_ordinals, dtype=int),
    )
