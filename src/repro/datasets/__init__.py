"""Synthetic datasets standing in for the proprietary production data.

* :mod:`repro.datasets.synthetic_logs` — generate production-style playback
  trajectory logs by simulating a heterogeneous user population over their
  bandwidth regimes with a production ABR (the stand-in for the paper's 1.5 M
  trajectories).
* :mod:`repro.datasets.stall_dataset` — turn a log corpus into the
  exit-rate-predictor training matrices of §3.3 (5-feature × length-8 windows
  with ALL / event / stall composition variants).
"""

from repro.datasets.synthetic_logs import LogGenerationConfig, generate_production_logs
from repro.datasets.stall_dataset import (
    DatasetComposition,
    ExitDataset,
    build_exit_dataset,
)

__all__ = [
    "LogGenerationConfig",
    "generate_production_logs",
    "DatasetComposition",
    "ExitDataset",
    "build_exit_dataset",
]
