"""Export run-report span trees as Chrome trace JSON (Perfetto-loadable).

Usage::

    python -m repro.obs.trace_export report.json -o trace.json
    python -m repro.obs.trace_export fleet.jsonl          # telemetry input

Open the output in https://ui.perfetto.dev (or chrome://tracing): each span
becomes a complete ("X") slice whose duration is the span's aggregate wall
time, nested exactly like the report's span tree.

The obs span tree stores *aggregates* (total seconds, call count) rather
than individual begin/end timestamps, so the exported timeline is a
**synthetic proportional layout**: children are laid out sequentially from
their parent's start, each sized by its total wall time, and the gap left at
the parent's end is the parent's self time.  Relative widths — where the
run spent its time — are faithful; absolute positions are not a replay of
real wall-clock interleaving.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.report import load_report, normalize_report

__all__ = ["span_tree_to_events", "report_to_chrome_trace", "export_trace", "main"]


def span_tree_to_events(spans: dict, *, pid: int = 1, tid: int = 1) -> list[dict]:
    """Flatten a serialised span tree into Chrome trace events (µs units)."""
    events: list[dict] = []

    def walk(node: dict, start_us: float) -> None:
        children = node.get("children", [])
        total_s = float(node.get("total_s", 0.0))
        self_s = total_s - sum(float(c.get("total_s", 0.0)) for c in children)
        events.append(
            {
                "name": node.get("name", "?"),
                "ph": "X",
                "cat": "span",
                "ts": round(start_us, 3),
                "dur": round(max(total_s, 0.0) * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": {
                    "count": node.get("count", 0),
                    "total_s": total_s,
                    "self_s": self_s,
                },
            }
        )
        cursor = start_us
        for child in children:
            walk(child, cursor)
            cursor += float(child.get("total_s", 0.0)) * 1e6

    cursor = 0.0
    for child in spans.get("children", []):
        walk(child, cursor)
        cursor += float(child.get("total_s", 0.0)) * 1e6
    return events


def report_to_chrome_trace(report: dict) -> dict:
    """Full Chrome trace document for one run health report."""
    report = normalize_report(report)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": f"repro fleet — {report['run_id']}"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "span tree (aggregate, proportional layout)"},
        },
    ]
    events.extend(span_tree_to_events(report.get("spans") or {}))
    counters = (report.get("metrics") or {}).get("counters", {})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run_id": report["run_id"],
            "report_version": report.get("version"),
            "sessions": report.get("sessions"),
            "segments": report.get("segments"),
            "wall_time_s": report.get("wall_time_s"),
            "counters": {name: counters[name] for name in sorted(counters)},
            "layout": "synthetic-proportional (aggregate span tree, not a replay)",
        },
    }


def export_trace(report_path: str | Path, out_path: str | Path | None = None) -> Path:
    """Convert a report (or telemetry) file; returns the trace path."""
    report = load_report(report_path)
    trace = report_to_chrome_trace(report)
    if out_path is None:
        source = Path(report_path)
        out_path = source.with_name(source.stem + "_trace.json")
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(trace) + "\n", encoding="utf-8")
    return out_path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace_export",
        description="Export a run report's span tree as Chrome/Perfetto trace JSON.",
    )
    parser.add_argument("report", help="report.json or profiled telemetry .jsonl")
    parser.add_argument("-o", "--out", default=None, help="output path (default: <stem>_trace.json)")
    args = parser.parse_args(argv)
    out = export_trace(args.report, args.out)
    doc = json.loads(out.read_text(encoding="utf-8"))
    slices = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
    print(f"wrote {out} ({slices} span slices) — open in https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    sys.exit(main())
