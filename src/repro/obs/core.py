"""Span tracing and the process-local observability state.

The runtime half of :mod:`repro.obs`: a module-level *active collector*
(``None`` when observability is disabled — the default), a
:func:`span` context manager that records a wall-time call tree, and the
counter/gauge/histogram helpers the instrumented hot paths call.

Design constraints, in priority order:

1. **Trace neutrality.**  Nothing here touches simulation state or RNG
   streams; spans only read ``time.perf_counter``.  Golden traces are
   bit-exact with observability on or off.
2. **Cheap when disabled.**  Every helper starts with one global read and
   a ``None`` check; :func:`span` returns a shared no-op context manager,
   so a disabled ``with span(...)`` costs a function call and the ``with``
   protocol — nanoseconds against the array math it wraps.
3. **Deterministic merging.**  Span trees merge by node name (counts and
   totals add, children union), and the serialised form sorts children by
   name, so the merged tree of a fleet run has the same *structure* for
   any shard/worker count executing the same workload.

Spans nest through a per-collector stack: ``span("a")`` inside
``span("b")`` produces the tree path ``b → a``, one node per distinct name
per parent, accumulating ``count`` and ``total_s`` across invocations.
Self time is derived at reporting: ``total_s`` minus the children's.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.registry import MetricsRegistry


class SpanNode:
    """One node of a span tree: a named phase and its accumulated wall time."""

    __slots__ = ("name", "count", "total_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.children: dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        """Find or create the child span node called ``name``."""
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def self_time_s(self) -> float:
        """Wall time not attributed to any child span."""
        return self.total_s - sum(c.total_s for c in self.children.values())

    def as_payload(self, pending: "dict[int, float] | None" = None) -> dict:
        """JSON form; children sorted by name for cross-process determinism.

        ``pending`` maps ``id(node) -> extra seconds`` for spans that are
        still open when the snapshot is taken (their in-flight elapsed time
        is added so a report written mid-span still accounts for it).
        """
        extra = pending.get(id(self), 0.0) if pending else 0.0
        return {
            "name": self.name,
            "count": self.count + (1 if extra else 0),
            "total_s": self.total_s + extra,
            "children": [
                self.children[name].as_payload(pending)
                for name in sorted(self.children)
            ],
        }

    def merge_payload(self, payload: dict) -> None:
        """Fold a serialised span node (same name) into this node."""
        self.count += int(payload["count"])
        self.total_s += float(payload["total_s"])
        for child in payload.get("children", []):
            self.child(str(child["name"])).merge_payload(child)


class Collector:
    """Process-local observability state: one metrics registry + span tree."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.root = SpanNode("")
        #: Stack of ``(node, perf_counter at entry)`` for open spans; the
        #: root sentinel never closes.
        self.stack: list[tuple[SpanNode, float]] = [(self.root, 0.0)]

    def snapshot(self) -> dict:
        """Serialise the collector (open spans include in-flight elapsed)."""
        now = time.perf_counter()
        pending: dict[int, float] = {}
        for node, started in self.stack[1:]:
            pending[id(node)] = pending.get(id(node), 0.0) + (now - started)
        return {
            "metrics": self.metrics.as_payload(),
            "spans": self.root.as_payload(pending),
        }

    def merge_snapshot(self, payload: dict) -> None:
        """Fold another collector's snapshot into this one.

        Metrics merge per key; the snapshot's span tree is grafted under the
        *currently open* span (the stack top), so a shard's ``shard.run``
        tree lands beneath the orchestrator's ``fleet.run_shards`` phase.
        """
        self.metrics.merge(payload.get("metrics", {}))
        parent = self.stack[-1][0]
        for child in payload.get("spans", {}).get("children", []):
            parent.child(str(child["name"])).merge_payload(child)


class _Span:
    """Live context manager for one span invocation."""

    __slots__ = ("collector", "name")

    def __init__(self, collector: Collector, name: str) -> None:
        self.collector = collector
        self.name = name

    def __enter__(self) -> None:
        stack = self.collector.stack
        node = stack[-1][0].child(self.name)
        stack.append((node, time.perf_counter()))

    def __exit__(self, *exc_info) -> None:
        node, started = self.collector.stack.pop()
        node.count += 1
        node.total_s += time.perf_counter() - started


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_SPAN = _NoopSpan()

#: The process's active collector; ``None`` → observability disabled.
_ACTIVE: Collector | None = None


def enabled() -> bool:
    """True when an observability collector is active in this process."""
    return _ACTIVE is not None


def active() -> Collector | None:
    """The active collector (``None`` when disabled)."""
    return _ACTIVE


def enable() -> Collector:
    """Install (and return) a fresh active collector."""
    global _ACTIVE
    _ACTIVE = Collector()
    return _ACTIVE


def disable() -> Collector | None:
    """Deactivate observability; returns the collector that was active."""
    global _ACTIVE
    collector, _ACTIVE = _ACTIVE, None
    return collector


@contextmanager
def collect() -> Iterator[Collector]:
    """Scope with a *fresh* collector installed; restores the previous one.

    Shard workers use this so their instrumentation lands in a private
    collector regardless of what the (forked) parent process had active —
    the serialised snapshot travels back with the shard result and the
    orchestrator merges it explicitly.
    """
    global _ACTIVE
    previous = _ACTIVE
    collector = Collector()
    _ACTIVE = collector
    try:
        yield collector
    finally:
        _ACTIVE = previous


def span(name: str):
    """Context manager timing one invocation of the named phase.

    Nested spans build a call tree on the active collector; when
    observability is disabled this returns a shared no-op object.
    """
    collector = _ACTIVE
    if collector is None:
        return _NOOP_SPAN
    return _Span(collector, name)


def counter_add(name: str, value: int | float = 1) -> None:
    """Add to a counter on the active collector (no-op when disabled)."""
    collector = _ACTIVE
    if collector is not None:
        collector.metrics.counter_add(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise a high-water-mark gauge (no-op when disabled)."""
    collector = _ACTIVE
    if collector is not None:
        collector.metrics.gauge_max(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op when disabled)."""
    collector = _ACTIVE
    if collector is not None:
        collector.metrics.observe(name, value)


def merge_shard_snapshot(payload: dict | None) -> None:
    """Merge a shard worker's snapshot into the active collector.

    No-op when disabled or when the shard carried no snapshot (it ran with
    profiling off).
    """
    collector = _ACTIVE
    if collector is not None and payload is not None:
        collector.merge_snapshot(payload)
