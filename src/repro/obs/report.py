"""Run health reports: one JSON document describing how a run *executed*.

Where the telemetry JSONL records what the simulation *did* (sessions,
segments, link usage — the replayable ground truth), the run report records
how the runtime *behaved*: a merged metrics snapshot, the span tree with
per-phase wall time, throughput in sessions/sec and segments/sec, fallback
counters and peak RSS.  The same document is appended to the fleet telemetry
stream as a ``run_report`` event and written standalone as ``report.json``
by ``experiments/runner.py --profile`` / ``examples/fleet_day.py --profile``.

Pretty-print a saved report with::

    python -m repro.obs.report report.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.obs.core import Collector, active

#: Report documents carry a schema version so downstream tooling (the CI
#: artifact diffing, the pretty printer) can evolve without guessing.
#: v2 adds the ``live`` section (heartbeat/straggler/ETA summary from
#: :mod:`repro.obs.live`); v1 documents stay readable — accessors and the
#: pretty printer normalise them via :func:`normalize_report`.
REPORT_VERSION = 2


def peak_rss_bytes() -> int | None:
    """Peak resident-set size of this process and its children, in bytes.

    ``None`` on platforms without :mod:`resource` (Windows).  Children are
    included so pooled fleet runs report the worker peak too (``ru_maxrss``
    of the largest finished child).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    self_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    scale = 1 if sys.platform == "darwin" else 1024
    return int(max(self_rss, child_rss) * scale)


def find_span(spans: dict, path: str) -> dict | None:
    """Look up a node in a serialised span tree by ``/``-joined name path.

    ``find_span(report["spans"], "fleet.run_day/fleet.run_shards")`` returns
    that phase's payload, or ``None`` when the path does not exist.
    """
    node = spans
    for name in path.split("/"):
        node = next(
            (c for c in node.get("children", []) if c["name"] == name), None
        )
        if node is None:
            return None
    return node


def span_coverage(node: dict) -> float:
    """Fraction of a span's wall time attributed to its child spans.

    1.0 for a leaf (nothing to attribute) and for a zero-duration node.
    """
    children = node.get("children", [])
    if not children or node["total_s"] <= 0.0:
        return 1.0
    return min(sum(c["total_s"] for c in children) / node["total_s"], 1.0)


def span_names(spans: dict) -> list[str]:
    """All ``/``-joined span paths of a tree, sorted — its *structure*.

    Two runs of the same workload under different shard/worker counts must
    produce equal ``span_names`` lists (the tests pin this).
    """
    names: list[str] = []

    def walk(node: dict, prefix: str) -> None:
        for child in node.get("children", []):
            path = f"{prefix}{child['name']}"
            names.append(path)
            walk(child, path + "/")

    walk(spans, "")
    return sorted(names)


def build_run_report(
    collector: Collector | None = None,
    *,
    run_id: str = "run",
    sessions: int | None = None,
    segments: int | None = None,
    wall_time_s: float | None = None,
    fallback_sessions: int | None = None,
    batch_sessions: int | None = None,
    per_shard: list[dict] | None = None,
    live: dict | None = None,
) -> dict:
    """Assemble the run health document from the collector's current state.

    ``collector`` defaults to the process's active one.  Explicit
    ``sessions``/``segments``/fallback numbers win; otherwise they are read
    from the standard counters (``fleet.sessions`` etc.) so a profiled
    multi-run session (``runner.py --profile``) aggregates naturally.
    ``wall_time_s`` defaults to the span tree's top-level total, which for a
    report built *inside* ``fleet.run_day`` includes the in-flight elapsed
    time of the open span.
    """
    collector = collector or active()
    if collector is None:
        raise ValueError("observability is disabled; no collector to report on")
    snapshot = collector.snapshot()
    counters = snapshot["metrics"]["counters"]
    if sessions is None:
        sessions = int(counters.get("fleet.sessions", 0))
    if segments is None:
        segments = int(counters.get("fleet.segments", 0))
    if fallback_sessions is None:
        fallback_sessions = int(counters.get("backend.fallback_sessions", 0))
    if batch_sessions is None:
        batch_sessions = int(counters.get("backend.batch_sessions", 0))
    top_level = snapshot["spans"]["children"]
    if wall_time_s is None:
        wall_time_s = sum(node["total_s"] for node in top_level)
    top = top_level[0] if len(top_level) == 1 else snapshot["spans"]
    report = {
        "version": REPORT_VERSION,
        "run_id": run_id,
        "wall_time_s": wall_time_s,
        "sessions": sessions,
        "segments": segments,
        "sessions_per_second": sessions / wall_time_s if wall_time_s > 0 else 0.0,
        "segments_per_second": segments / wall_time_s if wall_time_s > 0 else 0.0,
        "fallback": {
            "total_fallback_sessions": fallback_sessions,
            "total_batch_sessions": batch_sessions,
        },
        "peak_rss_bytes": peak_rss_bytes(),
        "span_coverage": span_coverage(top),
        "spans": snapshot["spans"],
        "metrics": snapshot["metrics"],
        # v2: wall-clock heartbeat/straggler/ETA summary (None when the run
        # executed without a LiveRun attached).
        "live": live,
    }
    if per_shard is not None:
        report["per_shard"] = per_shard
    return report


#: Defaults that make any report document — v1, v2, or a hand-built partial
#: one — render and replay uniformly.
_REPORT_DEFAULTS: dict = {
    "version": 1,
    "run_id": "run",
    "wall_time_s": 0.0,
    "sessions": 0,
    "segments": 0,
    "sessions_per_second": 0.0,
    "segments_per_second": 0.0,
    "fallback": {},
    "peak_rss_bytes": None,
    "span_coverage": 1.0,
    "spans": {},
    "metrics": {},
    "per_shard": [],
    "live": None,
}


def normalize_report(report: dict) -> dict:
    """Fill schema defaults so v1 and v2 documents share one shape.

    v1 reports (no ``live``, possibly no ``per_shard``) and partial
    documents gain the missing keys with neutral defaults; existing keys are
    never overwritten.  The input is not mutated.
    """
    out = dict(_REPORT_DEFAULTS)
    out.update(report)
    return out


def write_report(report: dict, path: str | Path) -> Path:
    """Write a report document as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def _format_seconds(value: float) -> str:
    # Self time can be negative where children ran in parallel workers (their
    # wall time is attributed under the parent's pool-wait span).
    sign = "-" if value < 0 else ""
    value = abs(value)
    if value >= 1.0:
        return f"{sign}{value:7.3f}s"
    if value >= 1e-3:
        return f"{sign}{value * 1e3:7.2f}ms"
    return f"{sign}{value * 1e6:7.1f}us"


def format_report(report: dict, max_depth: int = 6) -> str:
    """Human-readable rendering of a run health report.

    Handles v1 and v2 documents, empty runs, and zero-session days: every
    field is read through :func:`normalize_report` defaults, and the
    per-shard / live sections render "(none)" rather than assuming rows.
    """
    report = normalize_report(report)
    lines = [
        f"run health report — {report['run_id']} "
        f"(v{report.get('version', '?')})",
        f"  wall time        {report['wall_time_s']:.3f} s",
        f"  sessions         {report['sessions']} "
        f"({report['sessions_per_second']:.1f}/s)",
        f"  segments         {report['segments']} "
        f"({report['segments_per_second']:.1f}/s)",
    ]
    fallback = report.get("fallback", {})
    lines.append(
        "  fallback         "
        f"{fallback.get('total_fallback_sessions', 0)} of "
        f"{fallback.get('total_batch_sessions', 0)} batched sessions"
    )
    rss = report.get("peak_rss_bytes")
    if rss is not None:
        lines.append(f"  peak RSS         {rss / (1024 * 1024):.1f} MiB")
    lines.append(f"  span coverage    {report.get('span_coverage', 0.0) * 100:.1f}%")

    per_shard = report.get("per_shard") or []
    if per_shard:
        lines.append("  per-shard (sessions / segments / wall / fallback):")
        for row in per_shard:
            lines.append(
                f"    shard {row.get('shard', '?'):>3}  "
                f"{row.get('sessions', row.get('num_sessions', 0)):>7} / "
                f"{row.get('segments', row.get('num_segments', 0)):>8} / "
                f"{_format_seconds(row.get('wall_time_s', 0.0))} / "
                f"{row.get('fallback_sessions', 0)}"
            )

    live = report.get("live")
    if live:
        throughput = live.get("throughput_sps")
        lines.append(
            "  live monitor     "
            f"interval {live.get('heartbeat_interval_s', 0.0):g}s, "
            f"{live.get('sessions_done', 0)} sessions heartbeated"
            + (f", {throughput:.1f}/s" if throughput else "")
        )
        stragglers = live.get("stragglers") or []
        if stragglers:
            for item in stragglers:
                lines.append(
                    f"    straggler shard {item.get('shard', '?')} — no progress for "
                    f"{item.get('stalled_intervals', '?')} heartbeat intervals "
                    f"(day {item.get('day', '?')}, phase {item.get('phase', '?')})"
                )
        else:
            lines.append("    stragglers: (none)")

    lines.append("  spans (total / self / count):")

    def walk(node: dict, depth: int) -> None:
        if depth > max_depth:
            return
        children = node.get("children", [])
        self_s = node.get("total_s", 0.0) - sum(c.get("total_s", 0.0) for c in children)
        lines.append(
            f"  {'  ' * depth}{node.get('name', '?'):<{max(32 - 2 * depth, 8)}} "
            f"{_format_seconds(node.get('total_s', 0.0))} {_format_seconds(self_s)} "
            f"x{node.get('count', 0)}"
        )
        for child in children:
            walk(child, depth + 1)

    span_children = report.get("spans") or {}
    for child in span_children.get("children", []):
        walk(child, 1)
    if not span_children.get("children"):
        lines.append("    (no spans recorded)")

    counters = report.get("metrics", {}).get("counters", {})
    if counters:
        lines.append("  counters:")
        for name in sorted(counters):
            lines.append(f"    {name:<36} {counters[name]}")
    gauges = report.get("metrics", {}).get("gauges", {})
    if gauges:
        lines.append("  gauges (high-water marks):")
        for name in sorted(gauges):
            lines.append(f"    {name:<36} {gauges[name]:g}")
    histograms = report.get("metrics", {}).get("histograms", {})
    if histograms:
        lines.append("  histograms (count / mean / max):")
        for name in sorted(histograms):
            h = histograms[name]
            mean = h["total"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"    {name:<36} {h['count']} / {mean:g} / "
                f"{h['max'] if h['max'] is not None else '-'}"
            )
    return "\n".join(lines)


def load_report(path: str | Path) -> dict:
    """Load a report from ``report.json`` **or** a telemetry ``.jsonl`` file.

    A telemetry file is recognised by failing to parse as a single JSON
    document; its last ``run_report`` event is extracted instead (profiled
    runs embed the full report there).
    """
    path = Path(path)
    text = path.read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "event" not in doc:
        return doc
    # Telemetry JSONL (or a single telemetry event): replay the run_report.
    from repro.fleet.telemetry import replay_run_report  # deferred: module cycle  # contract: OBS-NEUTRAL-004 exempt(read-only replay of a persisted report; no sim state)

    report = replay_run_report(path)
    if report is None:
        raise SystemExit(
            f"{path}: telemetry has no run_report event (was the run profiled?)"
        )
    return report


def main(argv: list[str] | None = None) -> None:
    """``python -m repro.obs.report <report.json | telemetry.jsonl>``."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        raise SystemExit(
            "usage: python -m repro.obs.report <report.json | telemetry.jsonl>"
        )
    print(format_report(load_report(argv[0])))


if __name__ == "__main__":
    main()
