"""Attach to a running fleet/campaign and render live health.

Usage::

    python -m repro.obs.monitor status.json             # live TTY view
    python -m repro.obs.monitor status.json --json      # one JSON snapshot
    python -m repro.obs.monitor status.json --json --samples 5 --interval 1

The status file is written by :class:`repro.obs.live.LiveRun` (see the
``--live-status`` flag on ``examples/fleet_day.py``, ``examples/
longitudinal.py`` and ``repro.experiments.runner``).  It names the
shared-memory progress table to attach to; once the run finishes, the owner
rewrites the file with an embedded ``final`` snapshot so the monitor still
renders a post-mortem view after the shared memory is unlinked.

The monitor is strictly read-only: it attaches to the table as a foreign
process (detached from its own resource tracker so exiting never unlinks a
live run's memory) and performs seqlock-consistent reads.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.obs.live import ProgressTable, RunStatus

TERMINAL_STATES = ("done", "failed")


def load_status_file(path: str | Path) -> dict:
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("kind") != "repro-live-status":
        raise ValueError(f"{path}: not a repro live status file")
    return doc


def attach(doc: dict) -> ProgressTable | None:
    """Attach to the table named by a status file; None if already gone."""
    try:
        return ProgressTable.attach(doc["shm_name"], foreign=True)
    except (FileNotFoundError, ValueError, KeyError, OSError):
        return None


def snapshot(status_path: str | Path) -> dict:
    """One JSON-ready health snapshot (live table or embedded final state)."""
    doc = load_status_file(status_path)
    table = attach(doc)
    if table is not None:
        try:
            payload = table.status().as_payload()
        finally:
            table.close()
        # A run can finish between our attach and read: prefer the status
        # file's terminal state so scripted pollers see convergence.
        if doc.get("state") in TERMINAL_STATES and payload["state"] == "running":
            payload["state"] = doc["state"]
        payload["source"] = "shared-memory"
        return payload
    final = doc.get("final")
    if final is not None:
        payload = dict(final)
        payload["source"] = "status-file"
        return payload
    return {
        "kind": "live-status",
        "state": doc.get("state", "unknown"),
        "run_id": doc.get("run_id"),
        "source": "status-file",
        "totals": {"sessions_done": 0, "segments_done": 0, "shards_done": 0},
        "shards": [],
        "stragglers": [],
        "last_error": None,
    }


# ---------------------------------------------------------------------------
# TTY rendering
# ---------------------------------------------------------------------------


def _bar(done: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return "·" * width if done <= 0 else "?" * width
    filled = max(0, min(width, round(width * done / total)))
    return "█" * filled + "░" * (width - filled)


def _fmt_rss(rss_bytes: int) -> str:
    if rss_bytes <= 0:
        return "-"
    return f"{rss_bytes / (1024 * 1024):.0f}M"


def _fmt_eta(eta_s) -> str:
    if eta_s is None:
        return "-"
    if eta_s >= 90:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.0f}s"


def render(payload: dict) -> str:
    lines: list[str] = []
    totals = payload.get("totals", {})
    day = payload.get("day", -1)
    days_total = payload.get("days_total", -1)
    day_part = ""
    if isinstance(day, int) and day >= 0:
        day_part = f"  day {day}" + (f"/{days_total}" if isinstance(days_total, int) and days_total > 0 else "")
    throughput = totals.get("throughput_sps")
    lines.append(
        f"run {payload.get('run_id', '?')}  [{payload.get('state', '?')}]{day_part}  "
        f"sessions {totals.get('sessions_done', 0)}"
        + (f"  {throughput:.1f}/s" if throughput else "")
    )
    dau = payload.get("dau")
    roster = payload.get("roster")
    if isinstance(dau, int) and dau >= 0:
        roster_part = f" of {roster}" if isinstance(roster, int) and roster >= 0 else ""
        lines.append(f"dau {dau}{roster_part}")
    for shard in payload.get("shards", []):
        marker = "!!" if shard.get("flagged") else "  "
        done = shard.get("day_sessions", 0)
        total = shard.get("day_total", -1)
        progress = f"{done}/{total}" if total and total > 0 else f"{done}"
        state = shard.get("state", "?")
        phase = shard.get("phase") or ""
        span = shard.get("span") or ""
        detail = phase if not span else (span if span == phase else f"{phase} {span}")
        lines.append(
            f"{marker} shard {shard.get('shard', '?'):>3} [{_bar(done, total)}] "
            f"{progress:>11}  {state:<7} eta {_fmt_eta(shard.get('eta_s')):>6} "
            f"rss {_fmt_rss(shard.get('rss_bytes', 0)):>6}  {detail}"
        )
        if shard.get("error"):
            lines.append(f"     └─ error: {shard['error']}")
    stragglers = payload.get("stragglers", [])
    if stragglers:
        lines.append(f"stragglers: shards {sorted(stragglers)} (no progress — flagged by watchdog)")
    if payload.get("last_error"):
        lines.append(f"last error: {payload['last_error']}")
    return "\n".join(lines)


def follow(status_path: str | Path, *, interval: float, timeout: float | None, stream=None) -> int:
    """Interactive loop: redraw until the run reaches a terminal state."""
    stream = stream or sys.stdout
    deadline = None if timeout is None else time.monotonic() + timeout
    previous_lines = 0
    while True:
        payload = snapshot(status_path)
        text = render(payload)
        if previous_lines and stream.isatty():
            stream.write(f"\x1b[{previous_lines}F\x1b[J")
        stream.write(text + "\n")
        stream.flush()
        previous_lines = text.count("\n") + 1
        if payload.get("state") in TERMINAL_STATES:
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            stream.write("monitor: timeout reached, run still in progress\n")
            return 0
        time.sleep(interval)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.monitor",
        description="Attach to a running fleet/campaign and render live health.",
    )
    parser.add_argument("status_file", help="status JSON written by LiveRun (--live-status)")
    parser.add_argument("--json", action="store_true", help="emit JSON snapshot(s) instead of a TTY view")
    parser.add_argument("--samples", type=int, default=1, help="number of JSON snapshots to emit (JSONL when >1)")
    parser.add_argument("--interval", type=float, default=1.0, help="seconds between snapshots/redraws")
    parser.add_argument("--timeout", type=float, default=None, help="stop following after this many seconds")
    args = parser.parse_args(argv)

    if not args.json:
        return follow(args.status_file, interval=args.interval, timeout=args.timeout)

    samples = max(args.samples, 1)
    for i in range(samples):
        payload = snapshot(args.status_file)
        print(json.dumps(payload))
        if payload.get("state") in TERMINAL_STATES:
            break
        if i + 1 < samples:
            time.sleep(args.interval)
    return 0


if __name__ == "__main__":
    sys.exit(main())
