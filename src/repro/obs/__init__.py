"""repro.obs — fleet-wide metrics, span tracing, and run health reports.

Observability for the *runtime*, complementing the telemetry layer's record
of the *simulation*: counters/gauges/histograms with deterministic
cross-process merging, a wall-time span tree, and a per-run health report.
Disabled by default; :func:`enable` (or ``--profile`` on the runners) turns
it on for the current process, and shard workers ship their collector
snapshots back with their results for the orchestrator to merge.

All helpers are trace-neutral by construction: they never touch simulation
state or RNG streams, so golden traces stay bit-exact with obs on or off.

Live, in-flight observability lives in :mod:`repro.obs.live` (shared-memory
heartbeats, straggler watchdog — re-exported here) and its companions
:mod:`repro.obs.monitor` (``python -m repro.obs.monitor``),
:mod:`repro.obs.telemetry_reader` (out-of-core telemetry aggregation), and
:mod:`repro.obs.trace_export` (Chrome/Perfetto span timelines).  The latter
three import the fleet/analytics layers, so they are deliberately *not*
imported here — reach them as modules to avoid import cycles.
"""

from repro.obs.core import (
    Collector,
    SpanNode,
    active,
    collect,
    counter_add,
    disable,
    enable,
    enabled,
    gauge_max,
    merge_shard_snapshot,
    observe,
    span,
)
from repro.obs.live import (
    HeartbeatPublisher,
    LiveRun,
    ProgressTable,
    RunStatus,
    ShardStatus,
    active_run,
    live_run,
)
from repro.obs.registry import BUCKET_BOUNDS, Histogram, MetricsRegistry
from repro.obs.report import (
    REPORT_VERSION,
    build_run_report,
    find_span,
    format_report,
    load_report,
    normalize_report,
    peak_rss_bytes,
    span_coverage,
    span_names,
    write_report,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Collector",
    "HeartbeatPublisher",
    "Histogram",
    "LiveRun",
    "MetricsRegistry",
    "ProgressTable",
    "REPORT_VERSION",
    "RunStatus",
    "ShardStatus",
    "SpanNode",
    "active",
    "active_run",
    "build_run_report",
    "collect",
    "counter_add",
    "disable",
    "enable",
    "enabled",
    "find_span",
    "format_report",
    "gauge_max",
    "live_run",
    "load_report",
    "merge_shard_snapshot",
    "normalize_report",
    "observe",
    "peak_rss_bytes",
    "span",
    "span_coverage",
    "span_names",
    "write_report",
]
