"""Live fleet monitoring: shared-memory heartbeats, watchdog, run status.

This module is the in-flight counterpart to :mod:`repro.obs.core`.  While a
fleet run or longitudinal campaign executes, every shard — whether it runs
inline in the orchestrator process or inside a persistent pool worker —
publishes periodic heartbeats (sessions completed, current day/phase, open
span, RSS) into a small fixed-layout shared-memory *progress table*.  The
parent process owns the table through a :class:`LiveRun`, runs a wall-clock
watchdog thread that flags stalled shards as stragglers, and writes a small
JSON *status file* so `python -m repro.obs.monitor` can attach from a
different process and render live health.

Everything here reads only wall-clock time (`time.time`/`time.perf_counter`)
and writes only to shared memory outside the simulation — it never touches
simulation RNG streams, so heartbeats are trace-neutral by construction
(pinned by tests/test_live.py against the golden-trace corpus).

Layout (all little-endian, seqlock-protected):

* one header (parent-owned): run identity, campaign day, DAU/roster, state;
* ``rows`` per-shard rows (worker/shard-owned): progress counters, phase,
  open span, RSS, error;
* a parent-owned flags region: sticky straggler flag + consecutive stalled
  heartbeat intervals per row.

Writers bump the row's sequence number to an odd value, write the body, then
bump to the next even value; readers retry while the sequence is odd or
changes mid-read, so torn reads are never observed.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

__all__ = [
    "ProgressTable",
    "HeartbeatPublisher",
    "LiveRun",
    "RunStatus",
    "ShardStatus",
    "live_run",
    "active_run",
    "attach_worker",
    "reset_after_fork",
    "pulse",
    "add_sessions",
    "set_shard_total",
    "set_phase",
    "begin_shard",
    "finish_shard",
    "fail_shard",
    "STATE_IDLE",
    "STATE_RUNNING",
    "STATE_DONE",
    "STATE_FAILED",
]

MAGIC = b"RLM1"
TABLE_VERSION = 1

STATE_IDLE = 0
STATE_RUNNING = 1
STATE_DONE = 2
STATE_FAILED = 3

STATE_NAMES = {
    STATE_IDLE: "idle",
    STATE_RUNNING: "running",
    STATE_DONE: "done",
    STATE_FAILED: "failed",
}

# Header: magic, version, rows, row_size, state | seq | interval, started_at
# | day, days_total, num_shards, sessions_total, dau, roster, pid | run_id,
# last_error.  '<' disables padding so offsets are stable across platforms.
_SEQ = struct.Struct("<Q")
_HEADER_BODY = struct.Struct("<4sIIIIdd7q64s256s")
_HEADER_SIZE = _SEQ.size + _HEADER_BODY.size

# Row body: state, pid | shard, day, shards_done, sessions_done,
# day_sessions, day_total, segments_done, rss_bytes | started_at, updated_at
# | phase, span, error.
_ROW_BODY = struct.Struct("<II8qdd48s64s160s")
_ROW_SIZE = _SEQ.size + _ROW_BODY.size

# Parent-owned flags: (flagged, stalled_intervals) per row.  Single writer,
# word-sized fields — no seqlock needed.
_FLAG = struct.Struct("<II")

_SEQLOCK_RETRIES = 64


def _now() -> float:
    return time.time()


def _pack_str(value: str, width: int) -> bytes:
    return value.encode("utf-8", "replace")[: width - 1]


def _unpack_str(raw: bytes) -> str:
    return raw.split(b"\x00", 1)[0].decode("utf-8", "replace")


def _rss_bytes() -> int:
    """Current resident set size in bytes (0 when unavailable)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        scale = 1 if sys.platform == "darwin" else 1024
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale
    except Exception:
        return 0


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop a foreign attachment from this process's resource tracker.

    An attaching process (the monitor CLI) must not let its resource tracker
    unlink the segment at exit — the run that owns it may still be alive.
    Pool workers share the parent's tracker (forked after it starts), so the
    parent's register/unregister pair already covers them; this is only for
    genuinely foreign processes.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass


@dataclass(frozen=True)
class ShardStatus:
    """One decoded per-shard row (plus parent-side straggler flags)."""

    shard: int
    state: str
    pid: int
    day: int
    shards_done: int
    sessions_done: int
    day_sessions: int
    day_total: int
    segments_done: int
    rss_bytes: int
    started_at: float
    updated_at: float
    phase: str
    span: str
    error: str
    flagged: bool = False
    stalled_intervals: int = 0

    def eta_s(self, now: float | None = None) -> float | None:
        """Estimated seconds to finish the current day's sessions.

        Needs a known ``day_total`` and some progress to extrapolate from;
        returns ``None`` otherwise.  Wall-clock derived — never used inside
        the simulation.
        """
        if self.state != "running" or self.day_total <= 0 or self.day_sessions <= 0:
            return None
        now = _now() if now is None else now
        elapsed = max(now - self.started_at, 1e-9)
        rate = self.day_sessions / elapsed
        remaining = max(self.day_total - self.day_sessions, 0)
        return remaining / rate if rate > 0 else None

    def as_payload(self, now: float | None = None) -> dict:
        now = _now() if now is None else now
        eta = self.eta_s(now)
        return {
            "shard": self.shard,
            "state": self.state,
            "pid": self.pid,
            "day": self.day,
            "shards_done": self.shards_done,
            "sessions_done": self.sessions_done,
            "day_sessions": self.day_sessions,
            "day_total": self.day_total,
            "segments_done": self.segments_done,
            "rss_bytes": self.rss_bytes,
            "age_s": round(max(now - self.updated_at, 0.0), 3) if self.updated_at else None,
            "eta_s": round(eta, 3) if eta is not None else None,
            "phase": self.phase,
            "span": self.span,
            "flagged": self.flagged,
            "stalled_intervals": self.stalled_intervals,
            "error": self.error or None,
        }


@dataclass(frozen=True)
class RunStatus:
    """A consistent snapshot of the whole progress table."""

    state: str
    run_id: str
    interval: float
    started_at: float
    day: int
    days_total: int
    num_shards: int
    sessions_total: int
    dau: int
    roster: int
    pid: int
    last_error: str
    shards: tuple[ShardStatus, ...]
    taken_at: float = field(default_factory=_now)

    @property
    def sessions_done(self) -> int:
        return sum(s.sessions_done for s in self.shards)

    @property
    def segments_done(self) -> int:
        return sum(s.segments_done for s in self.shards)

    @property
    def stragglers(self) -> tuple[ShardStatus, ...]:
        return tuple(s for s in self.shards if s.flagged)

    def throughput_sps(self) -> float | None:
        """Mean sessions/sec since the run started (wall-clock)."""
        elapsed = self.taken_at - self.started_at
        if elapsed <= 0 or self.sessions_done <= 0:
            return None
        return self.sessions_done / elapsed

    def as_payload(self) -> dict:
        now = self.taken_at
        throughput = self.throughput_sps()
        return {
            "kind": "live-status",
            "taken_at": round(now, 3),
            "state": self.state,
            "run_id": self.run_id,
            "pid": self.pid,
            "heartbeat_interval_s": self.interval,
            "day": self.day,
            "days_total": self.days_total,
            "num_shards": self.num_shards,
            "dau": self.dau,
            "roster": self.roster,
            "totals": {
                "sessions_done": self.sessions_done,
                "sessions_total": self.sessions_total,
                "segments_done": self.segments_done,
                "shards_done": sum(s.shards_done for s in self.shards),
                "throughput_sps": round(throughput, 3) if throughput else None,
            },
            "shards": [s.as_payload(now) for s in self.shards],
            "stragglers": [s.shard for s in self.shards if s.flagged],
            "last_error": self.last_error or None,
        }


class ProgressTable:
    """Fixed-layout shared-memory table of per-shard heartbeat rows."""

    def __init__(self, shm: shared_memory.SharedMemory, rows: int, *, owner: bool):
        self.shm = shm
        self.rows = rows
        self.owner = owner
        self._buf = shm.buf

    # -- construction -----------------------------------------------------

    @staticmethod
    def size_for(rows: int) -> int:
        return _HEADER_SIZE + rows * _ROW_SIZE + rows * _FLAG.size

    @classmethod
    def create(cls, rows: int, *, interval: float, run_id: str) -> "ProgressTable":
        shm = shared_memory.SharedMemory(create=True, size=cls.size_for(rows))  # contract: SHM-005 exempt(owning LiveRun unlinks via ProgressTable.close(owner=True); foreign attaches untracked)
        table = cls(shm, rows, owner=True)
        shm.buf[: table.size_for(rows)] = b"\x00" * table.size_for(rows)
        table.write_header(
            state=STATE_IDLE,
            interval=interval,
            started_at=_now(),
            day=-1,
            days_total=-1,
            num_shards=0,
            sessions_total=-1,
            dau=-1,
            roster=-1,
            pid=os.getpid(),
            run_id=run_id,
            last_error="",
        )
        return table

    @classmethod
    def attach(cls, name: str, *, foreign: bool = False) -> "ProgressTable":
        """Attach to an existing table by shared-memory name.

        ``foreign=True`` (the monitor CLI) additionally unregisters the
        attachment from this process's resource tracker so exiting the
        monitor never unlinks a live run's table.
        """
        shm = shared_memory.SharedMemory(name=name)
        magic, version, rows, row_size = struct.unpack_from("<4sIII", shm.buf, _SEQ.size)
        if magic != MAGIC:
            shm.close()
            raise ValueError(f"{name}: not a repro live progress table")
        if version != TABLE_VERSION or row_size != _ROW_SIZE:
            shm.close()
            raise ValueError(
                f"{name}: progress table version mismatch "
                f"(got v{version}/row {row_size}, want v{TABLE_VERSION}/row {_ROW_SIZE})"
            )
        table = cls(shm, rows, owner=False)
        if foreign and table.read_header().get("pid") != os.getpid():
            # A genuinely different process: drop the attach-side tracker
            # registration.  Same-process attaches (tests, in-process
            # monitoring) keep the creator's single registration intact.
            _untrack(shm)
        return table

    @property
    def name(self) -> str:
        return self.shm.name

    def close(self) -> None:
        try:
            self._buf = None
            self.shm.close()
            if self.owner:
                self.shm.unlink()
        except (FileNotFoundError, BufferError, OSError):
            pass

    # -- seqlock primitives ------------------------------------------------

    def _write_locked(self, offset: int, body: struct.Struct, *values) -> None:
        buf = self._buf
        (seq,) = _SEQ.unpack_from(buf, offset)
        _SEQ.pack_into(buf, offset, seq + 1)  # odd: write in progress
        body.pack_into(buf, offset + _SEQ.size, *values)
        _SEQ.pack_into(buf, offset, seq + 2)  # even: consistent

    def _read_locked(self, offset: int, body: struct.Struct) -> tuple:
        buf = self._buf
        for _ in range(_SEQLOCK_RETRIES):
            (seq1,) = _SEQ.unpack_from(buf, offset)
            if seq1 & 1:
                time.sleep(0)
                continue
            values = body.unpack_from(buf, offset + _SEQ.size)
            (seq2,) = _SEQ.unpack_from(buf, offset)
            if seq1 == seq2:
                return values
        # Writer died mid-write or extreme contention: accept the torn read
        # rather than spin forever — monitoring must never hang the caller.
        return body.unpack_from(buf, offset + _SEQ.size)

    # -- header ------------------------------------------------------------

    def write_header(self, **fields) -> None:
        current = self.read_header()
        current.update(fields)
        self._write_locked(
            0,
            _HEADER_BODY,
            MAGIC,
            TABLE_VERSION,
            self.rows,
            _ROW_SIZE,
            int(current["state"]),
            float(current["interval"]),
            float(current["started_at"]),
            int(current["day"]),
            int(current["days_total"]),
            int(current["num_shards"]),
            int(current["sessions_total"]),
            int(current["dau"]),
            int(current["roster"]),
            int(current["pid"]),
            _pack_str(str(current["run_id"]), 64),
            _pack_str(str(current["last_error"]), 256),
        )

    def read_header(self) -> dict:
        (seq,) = _SEQ.unpack_from(self._buf, 0)
        if seq == 0:  # freshly zeroed table, mid-create
            return {
                "state": STATE_IDLE,
                "interval": 0.0,
                "started_at": 0.0,
                "day": -1,
                "days_total": -1,
                "num_shards": 0,
                "sessions_total": -1,
                "dau": -1,
                "roster": -1,
                "pid": 0,
                "run_id": "",
                "last_error": "",
            }
        values = self._read_locked(0, _HEADER_BODY)
        (
            _magic,
            _version,
            _rows,
            _row_size,
            state,
            interval,
            started_at,
            day,
            days_total,
            num_shards,
            sessions_total,
            dau,
            roster,
            pid,
            run_id,
            last_error,
        ) = values
        return {
            "state": state,
            "interval": interval,
            "started_at": started_at,
            "day": day,
            "days_total": days_total,
            "num_shards": num_shards,
            "sessions_total": sessions_total,
            "dau": dau,
            "roster": roster,
            "pid": pid,
            "run_id": _unpack_str(run_id),
            "last_error": _unpack_str(last_error),
        }

    # -- rows --------------------------------------------------------------

    def _row_offset(self, row: int) -> int:
        return _HEADER_SIZE + row * _ROW_SIZE

    def write_row(
        self,
        row: int,
        *,
        state: int,
        pid: int,
        shard: int,
        day: int,
        shards_done: int,
        sessions_done: int,
        day_sessions: int,
        day_total: int,
        segments_done: int,
        rss_bytes: int,
        started_at: float,
        updated_at: float,
        phase: str,
        span: str,
        error: str,
    ) -> None:
        self._write_locked(
            self._row_offset(row),
            _ROW_BODY,
            state,
            pid,
            shard,
            day,
            shards_done,
            sessions_done,
            day_sessions,
            day_total,
            segments_done,
            rss_bytes,
            started_at,
            updated_at,
            _pack_str(phase, 48),
            _pack_str(span, 64),
            _pack_str(error, 160),
        )

    def read_row(self, row: int) -> ShardStatus:
        values = self._read_locked(self._row_offset(row), _ROW_BODY)
        (
            state,
            pid,
            shard,
            day,
            shards_done,
            sessions_done,
            day_sessions,
            day_total,
            segments_done,
            rss_bytes,
            started_at,
            updated_at,
            phase,
            span,
            error,
        ) = values
        flagged, stalled = self.read_flags(row)
        return ShardStatus(
            shard=shard,
            state=STATE_NAMES.get(state, str(state)),
            pid=pid,
            day=day,
            shards_done=shards_done,
            sessions_done=sessions_done,
            day_sessions=day_sessions,
            day_total=day_total,
            segments_done=segments_done,
            rss_bytes=rss_bytes,
            started_at=started_at,
            updated_at=updated_at,
            phase=_unpack_str(phase),
            span=_unpack_str(span),
            error=_unpack_str(error),
            flagged=bool(flagged),
            stalled_intervals=stalled,
        )

    def read_rows(self) -> list[ShardStatus]:
        return [self.read_row(i) for i in range(self.rows)]

    # -- parent-owned straggler flags --------------------------------------

    def _flag_offset(self, row: int) -> int:
        return _HEADER_SIZE + self.rows * _ROW_SIZE + row * _FLAG.size

    def write_flags(self, row: int, *, flagged: bool, stalled_intervals: int) -> None:
        _FLAG.pack_into(self._buf, self._flag_offset(row), int(flagged), stalled_intervals)

    def read_flags(self, row: int) -> tuple[int, int]:
        return _FLAG.unpack_from(self._buf, self._flag_offset(row))

    # -- snapshots ----------------------------------------------------------

    def status(self) -> RunStatus:
        header = self.read_header()
        shards = tuple(
            row
            for row in self.read_rows()
            if row.state != "idle" or row.sessions_done or row.shards_done
        )
        return RunStatus(
            state=STATE_NAMES.get(header["state"], str(header["state"])),
            run_id=header["run_id"],
            interval=header["interval"],
            started_at=header["started_at"],
            day=header["day"],
            days_total=header["days_total"],
            num_shards=header["num_shards"],
            sessions_total=header["sessions_total"],
            dau=header["dau"],
            roster=header["roster"],
            pid=header["pid"],
            last_error=header["last_error"],
            shards=shards,
        )


class HeartbeatPublisher:
    """Process-local writer of one shard row at a time.

    A publisher exists once per process (orchestrator for inline shards, each
    pool worker for pooled shards).  It tracks counters locally and flushes
    the full row at most once per ``interval`` seconds, plus forced flushes
    on shard begin/finish/fail — the hot-path cost of :meth:`maybe_publish`
    between flushes is a single ``perf_counter`` comparison.
    """

    __slots__ = (
        "table",
        "interval",
        "_row",
        "_shard",
        "_day",
        "_state",
        "_shards_done",
        "_sessions_base",
        "_segments_base",
        "_day_sessions",
        "_day_total",
        "_segments",
        "_phase",
        "_error",
        "_started_at",
        "_next_publish",
    )

    def __init__(self, table: ProgressTable, interval: float):
        self.table = table
        self.interval = max(float(interval), 1e-3)
        self._row: int | None = None
        self._shard = -1
        self._day = -1
        self._state = STATE_IDLE
        self._shards_done = 0
        self._sessions_base = 0
        self._segments_base = 0
        self._day_sessions = 0
        self._day_total = -1
        self._segments = 0
        self._phase = ""
        self._error = ""
        self._started_at = 0.0
        self._next_publish = 0.0

    # -- shard lifecycle ---------------------------------------------------

    def begin_shard(self, shard: int, day: int) -> None:
        if shard < 0 or shard >= self.table.rows:
            self._row = None
            return
        self._row = shard
        self._shard = shard
        self._day = day
        # Cumulative counters persist across campaign days: re-read the row
        # this process (or a predecessor worker) last wrote for this shard.
        previous = self.table.read_row(shard)
        self._shards_done = previous.shards_done
        self._sessions_base = previous.sessions_done
        self._segments_base = previous.segments_done
        self._day_sessions = 0
        self._day_total = -1
        self._segments = 0
        self._phase = "start"
        self._error = ""
        self._state = STATE_RUNNING
        self._started_at = _now()
        self._publish(force=True)

    def set_total(self, total: int) -> None:
        if self._row is None:
            return
        self._day_total = int(total)
        self._publish(force=True)

    def set_phase(self, phase: str) -> None:
        if self._row is None:
            return
        self._phase = phase
        self.maybe_publish()

    def add_sessions(self, sessions: int, segments: int = 0) -> None:
        if self._row is None:
            return
        self._day_sessions += sessions
        self._segments += segments
        self.maybe_publish()

    def finish_shard(self, sessions: int | None = None, segments: int | None = None) -> None:
        if self._row is None:
            return
        # Authoritative totals from the orchestrator reconcile any counting
        # the incremental hooks missed (e.g. networked batches).
        if sessions is not None:
            self._day_sessions = sessions
        if segments is not None:
            self._segments = segments
        self._shards_done += 1
        self._state = STATE_DONE
        self._phase = "done"
        self._publish(force=True)
        self._row = None

    def fail_shard(self, error: str) -> None:
        if self._row is None:
            return
        self._state = STATE_FAILED
        self._error = error
        self._phase = "failed"
        self._publish(force=True)
        self._row = None

    # -- publication -------------------------------------------------------

    def maybe_publish(self) -> None:
        if self._row is None:
            return
        if time.perf_counter() >= self._next_publish:
            self._publish()

    def _publish(self, force: bool = False) -> None:
        if self._row is None:
            return
        self._next_publish = time.perf_counter() + self.interval
        span = ""
        try:  # surface the open obs span when profiling is enabled
            from repro.obs import core as obs_core

            collector = obs_core._ACTIVE  # noqa: SLF001
            if collector is not None and collector.stack:
                span = collector.stack[-1][0].name
        except Exception:
            span = ""
        self.table.write_row(
            self._row,
            state=self._state,
            pid=os.getpid(),
            shard=self._shard,
            day=self._day,
            shards_done=self._shards_done,
            sessions_done=self._sessions_base + self._day_sessions,
            day_sessions=self._day_sessions,
            day_total=self._day_total,
            segments_done=self._segments_base + self._segments,
            rss_bytes=_rss_bytes(),
            started_at=self._started_at,
            updated_at=_now(),
            phase=self._phase,
            span=span,
            error=self._error,
        )


class LiveRun:
    """Parent-side owner of a progress table, status file, and watchdog.

    Create one around a fleet run or campaign (usually via the
    :func:`live_run` context manager).  It:

    * allocates the shared-memory progress table and installs the module
      global publisher so inline shards heartbeat too;
    * writes a JSON status file that `repro.obs.monitor` uses to attach;
    * runs a daemon watchdog thread that flags shards whose heartbeats stop
      advancing for ``stall_intervals`` consecutive intervals (sticky flags,
      visible to monitors through the table's flag region);
    * produces the ``live`` section of REPORT_VERSION=2 run reports via
      :meth:`summary`.
    """

    def __init__(
        self,
        status_path: str | os.PathLike | None = None,
        *,
        rows: int = 64,
        interval: float = 0.25,
        stall_intervals: int = 8,
        run_id: str = "run",
        watchdog: bool = True,
    ):
        self.interval = max(float(interval), 1e-3)
        self.stall_intervals = max(int(stall_intervals), 1)
        self.run_id = run_id
        self.table = ProgressTable.create(rows, interval=self.interval, run_id=run_id)
        self.status_path = Path(status_path) if status_path is not None else None
        self._flagged: dict[int, dict] = {}
        self._watch_keys: dict[int, tuple] = {}
        self._stalls: dict[int, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._closed = False
        self._write_status_file("running")
        if watchdog:
            self._thread = threading.Thread(
                target=self._watchdog_loop, name="repro-live-watchdog", daemon=True
            )
            self._thread.start()

    # -- identity ----------------------------------------------------------

    @property
    def shm_name(self) -> str:
        return self.table.name

    def worker_token(self) -> tuple[str, float]:
        """Compact (shm name, interval) pair shipped in ShardDescriptors."""
        return (self.table.name, self.interval)

    # -- run lifecycle hooks (called by orchestrator / campaign) -----------

    def begin_fleet_run(self, *, run_id: str, num_shards: int, day: int) -> None:
        self.table.write_header(
            state=STATE_RUNNING, run_id=run_id, num_shards=num_shards, day=day
        )

    def begin_campaign(self, *, start_day: int, days: int, run_id: str | None = None) -> None:
        fields = {"state": STATE_RUNNING, "day": start_day, "days_total": days}
        if run_id is not None:
            fields["run_id"] = run_id
        self.table.write_header(**fields)

    def note_day(self, *, day: int, dau: int | None = None, roster: int | None = None) -> None:
        fields: dict = {"day": day}
        if dau is not None:
            fields["dau"] = dau
        if roster is not None:
            fields["roster"] = roster
        self.table.write_header(**fields)

    def finish_fleet_run(self, *, sessions: int) -> None:
        header = self.table.read_header()
        total = header["sessions_total"]
        self.table.write_header(sessions_total=(0 if total < 0 else total) + sessions)

    # -- watchdog ----------------------------------------------------------

    def _watchdog_loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.watchdog_tick()
            except Exception:
                # Monitoring must never take down the run it observes.
                return

    def watchdog_tick(self) -> list[int]:
        """One watchdog pass; returns rows newly flagged as stragglers.

        Progress is defined as the row's ``updated_at`` advancing: active
        shards publish at least once per interval (the sim hot loops call
        :func:`pulse`), so a frozen timestamp over ``stall_intervals``
        consecutive passes means the shard is genuinely stuck.
        """
        newly_flagged: list[int] = []
        with self._lock:
            for i in range(self.table.rows):
                row = self.table.read_row(i)
                if row.state != "running":
                    self._watch_keys.pop(i, None)
                    self._stalls[i] = 0
                    if row.state == "failed" and row.error:
                        self.table.write_header(last_error=f"shard {row.shard}: {row.error}")
                    # Straggler flags stay sticky after the shard finishes.
                    if i in self._flagged:
                        self.table.write_flags(
                            i, flagged=True, stalled_intervals=self._flagged[i]["stalled_intervals"]
                        )
                    continue
                key = (row.updated_at, row.day, row.day_sessions, row.segments_done)
                if self._watch_keys.get(i) == key:
                    self._stalls[i] = self._stalls.get(i, 0) + 1
                else:
                    self._stalls[i] = 0
                self._watch_keys[i] = key
                stalled = self._stalls[i]
                flagged = i in self._flagged or stalled >= self.stall_intervals
                if flagged and i not in self._flagged:
                    self._flagged[i] = {
                        "shard": row.shard,
                        "day": row.day,
                        "phase": row.phase,
                        "stalled_intervals": stalled,
                        "flagged_at": _now(),
                    }
                    newly_flagged.append(i)
                elif flagged:
                    self._flagged[i]["stalled_intervals"] = max(
                        self._flagged[i]["stalled_intervals"], stalled
                    )
                self.table.write_flags(i, flagged=flagged, stalled_intervals=stalled)
        return newly_flagged

    # -- snapshots / reporting ---------------------------------------------

    def status(self) -> RunStatus:
        return self.table.status()

    def stragglers(self) -> list[dict]:
        with self._lock:
            return sorted(self._flagged.values(), key=lambda f: f["shard"])

    def summary(self) -> dict:
        """The ``live`` section of a v2 run report (wall-clock derived)."""
        status = self.status()
        return {
            "heartbeat_interval_s": self.interval,
            "stall_intervals": self.stall_intervals,
            "sessions_done": status.sessions_done,
            "segments_done": status.segments_done,
            "throughput_sps": status.throughput_sps(),
            "shards": [s.as_payload(status.taken_at) for s in status.shards],
            "stragglers": self.stragglers(),
        }

    # -- status file --------------------------------------------------------

    def _write_status_file(self, state: str, final: dict | None = None) -> None:
        if self.status_path is None:
            return
        doc = {
            "kind": "repro-live-status",
            "version": 1,
            "state": state,
            "shm_name": self.table.name,
            "rows": self.table.rows,
            "heartbeat_interval_s": self.interval,
            "stall_intervals": self.stall_intervals,
            "run_id": self.run_id,
            "pid": os.getpid(),
            "created_at": _now(),
        }
        if final is not None:
            doc["final"] = final
        tmp = self.status_path.with_suffix(self.status_path.suffix + ".tmp")
        tmp.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        tmp.replace(self.status_path)

    # -- teardown -----------------------------------------------------------

    def close(self, state: str = "done", error: str | None = None) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(self.interval * 4, 1.0))
        try:
            self.watchdog_tick()
        except Exception:
            pass
        if error:
            self.table.write_header(last_error=error)
        self.table.write_header(state=STATE_FAILED if state == "failed" else STATE_DONE)
        # Embed the final snapshot so monitors attaching after the shared
        # memory is gone still render a post-mortem view.
        final = self.table.status().as_payload()
        final["state"] = state
        final["stragglers_detail"] = self.stragglers()
        self._write_status_file(state, final=final)
        global _PUBLISHER, _LIVE_RUN
        if _LIVE_RUN is self:
            _LIVE_RUN = None
        if _PUBLISHER is not None and _PUBLISHER.table is self.table:
            _PUBLISHER = None
        self.table.close()


# ---------------------------------------------------------------------------
# Module-global wiring: one live run / publisher per process.
# ---------------------------------------------------------------------------

_LIVE_RUN: LiveRun | None = None
_PUBLISHER: HeartbeatPublisher | None = None
_WORKER_TABLE: ProgressTable | None = None


def active_run() -> LiveRun | None:
    return _LIVE_RUN


def install_run(run: LiveRun) -> LiveRun:
    """Install ``run`` as the process-wide live run (+ inline publisher)."""
    global _LIVE_RUN, _PUBLISHER
    _LIVE_RUN = run
    _PUBLISHER = HeartbeatPublisher(run.table, run.interval)
    return run


@contextmanager
def live_run(
    status_path: str | os.PathLike | None = None,
    *,
    rows: int = 64,
    interval: float = 0.25,
    stall_intervals: int = 8,
    run_id: str = "run",
    watchdog: bool = True,
):
    """Context manager: create, install, and reliably close a LiveRun."""
    run = LiveRun(
        status_path,
        rows=rows,
        interval=interval,
        stall_intervals=stall_intervals,
        run_id=run_id,
        watchdog=watchdog,
    )
    install_run(run)
    try:
        yield run
    except BaseException as exc:
        run.close(state="failed", error=f"{type(exc).__name__}: {exc}"[:250])
        raise
    else:
        run.close(state="done")


def attach_worker(shm_name: str, interval: float) -> None:
    """Pool-worker side: attach (or re-attach) to the run's progress table.

    Called from ``_worker_main`` before each shard when the descriptor
    carries a heartbeat token.  Workers are forked once at pool creation —
    possibly before any LiveRun exists — so attachment is lazy, by name, and
    cached until the name changes (a new run created a new table).
    """
    global _PUBLISHER, _WORKER_TABLE
    if _WORKER_TABLE is not None and _WORKER_TABLE.name == shm_name and _PUBLISHER is not None:
        _PUBLISHER.interval = max(float(interval), 1e-3)
        return
    if _WORKER_TABLE is not None:
        _WORKER_TABLE.close()
        _WORKER_TABLE = None
        _PUBLISHER = None
    try:
        table = ProgressTable.attach(shm_name)
    except (FileNotFoundError, ValueError, OSError):
        return  # run already closed; heartbeats silently off
    _WORKER_TABLE = table
    _PUBLISHER = HeartbeatPublisher(table, interval)


def reset_after_fork() -> None:
    """Forget inherited live state in a freshly forked pool worker.

    The child must not own the parent's table (no watchdog, no unlink) and
    must not reuse the parent's publisher row bookkeeping.
    """
    global _LIVE_RUN, _PUBLISHER, _WORKER_TABLE
    _LIVE_RUN = None
    _PUBLISHER = None
    _WORKER_TABLE = None


# Hot-path hooks: a single None-check when no live run is active.


def pulse() -> None:
    publisher = _PUBLISHER
    if publisher is not None:
        publisher.maybe_publish()


def add_sessions(sessions: int, segments: int = 0) -> None:
    publisher = _PUBLISHER
    if publisher is not None:
        publisher.add_sessions(sessions, segments)


def set_shard_total(total: int) -> None:
    publisher = _PUBLISHER
    if publisher is not None:
        publisher.set_total(total)


def set_phase(phase: str) -> None:
    publisher = _PUBLISHER
    if publisher is not None:
        publisher.set_phase(phase)


def begin_shard(shard: int, day: int) -> None:
    publisher = _PUBLISHER
    if publisher is not None:
        publisher.begin_shard(shard, day)


def finish_shard(sessions: int | None = None, segments: int | None = None) -> None:
    publisher = _PUBLISHER
    if publisher is not None:
        publisher.finish_shard(sessions, segments)


def fail_shard(error: str) -> None:
    publisher = _PUBLISHER
    if publisher is not None:
        publisher.fail_shard(error)
