"""Out-of-core telemetry: chunked index + bounded-memory streaming aggregates.

Telemetry JSONL files are the replayable source of truth for fleet runs, but
:func:`repro.fleet.telemetry.replay_log_collection` materialises every
session in memory — a dead end at million-user scale.  This module reads the
same files out-of-core:

* :class:`TelemetryIndex` — a sidecar index (``<file>.idx.json``) of fixed
  event-count chunks with byte offsets and per-chunk event-type counts, so
  readers seek past chunks that cannot contain the event type they want;
* :func:`iter_events` / :func:`iter_session_logs` — streaming iterators that
  hold one event (one session) at a time;
* :func:`stream_fleet_metrics`, :func:`stream_exit_rate_by_stall_time`,
  :func:`stream_segment_exit_rate` — bounded-memory aggregations that
  reproduce the in-memory ``fleet_metrics``/:class:`LogCollection` results
  **exactly** (same per-session accumulation, in the same file order, with
  the same float operations — pinned bit-for-bit by
  tests/test_telemetry_reader.py).

Peak memory is O(chunk) regardless of file size: a 10x-larger telemetry
file aggregates in the same footprint (also pinned by tests).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

# contract: OBS-NEUTRAL-004 exempt(read-only telemetry codec; decodes events without touching sim state)
from repro.fleet.telemetry import (
    TelemetryEvent,
    iter_event_lines,
    session_from_payload,
)

# v2: adds file_mtime_ns to the freshness fingerprint (a rewritten file with
# identical byte length used to keep serving the stale sidecar).  Bumping the
# version makes v1 sidecars fail ``load`` and rebuild transparently.
INDEX_VERSION = 2
DEFAULT_EVENTS_PER_CHUNK = 1024

__all__ = [
    "ChunkEntry",
    "TelemetryIndex",
    "default_index_path",
    "load_or_build_index",
    "iter_events",
    "iter_session_logs",
    "stream_fleet_metrics",
    "stream_segment_exit_rate",
    "stream_exit_rate_by_stall_time",
    "last_event",
    "read_run_summary",
]


@dataclass(frozen=True)
class ChunkEntry:
    """One chunk of consecutive telemetry events."""

    offset: int  # byte offset of the chunk's first line
    length: int  # total bytes covered by the chunk
    num_events: int
    counts: dict = field(default_factory=dict)  # event type -> count

    def as_payload(self) -> dict:
        return {
            "offset": self.offset,
            "length": self.length,
            "num_events": self.num_events,
            "counts": dict(self.counts),
        }

    @classmethod
    def from_payload(cls, raw: dict) -> "ChunkEntry":
        return cls(
            offset=int(raw["offset"]),
            length=int(raw["length"]),
            num_events=int(raw["num_events"]),
            counts={str(k): int(v) for k, v in raw.get("counts", {}).items()},
        )


@dataclass(frozen=True)
class TelemetryIndex:
    """Sidecar index of a telemetry JSONL file.

    The index stores the indexed file's size *and* mtime so staleness is
    detectable: :func:`load_or_build_index` silently rebuilds when the file
    grew, shrank, or was rewritten in place with the same byte length.
    """

    path: str
    file_bytes: int
    num_events: int
    events_per_chunk: int
    event_counts: dict
    chunks: tuple
    file_mtime_ns: int = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls, path: str | Path, events_per_chunk: int = DEFAULT_EVENTS_PER_CHUNK
    ) -> "TelemetryIndex":
        """Scan ``path`` once, building chunk entries of ``events_per_chunk``."""
        events_per_chunk = max(int(events_per_chunk), 1)
        chunks: list[ChunkEntry] = []
        totals: dict[str, int] = {}
        chunk_start = 0
        chunk_counts: dict[str, int] = {}
        chunk_events = 0
        end = 0
        for offset, raw in iter_event_lines(path):
            end = offset + len(raw)
            line = raw.strip()
            if not line:
                continue
            if chunk_events == 0:
                chunk_start = offset
            event = str(json.loads(line).get("event", ""))
            chunk_counts[event] = chunk_counts.get(event, 0) + 1
            totals[event] = totals.get(event, 0) + 1
            chunk_events += 1
            if chunk_events >= events_per_chunk:
                chunks.append(
                    ChunkEntry(chunk_start, end - chunk_start, chunk_events, chunk_counts)
                )
                chunk_counts = {}
                chunk_events = 0
        if chunk_events:
            chunks.append(
                ChunkEntry(chunk_start, end - chunk_start, chunk_events, chunk_counts)
            )
        stat = Path(path).stat()
        return cls(
            path=str(path),
            file_bytes=stat.st_size,
            num_events=sum(totals.values()),
            events_per_chunk=events_per_chunk,
            event_counts=totals,
            chunks=tuple(chunks),
            file_mtime_ns=stat.st_mtime_ns,
        )

    # -- persistence -------------------------------------------------------

    def save(self, index_path: str | Path | None = None) -> Path:
        target = Path(index_path) if index_path else default_index_path(self.path)
        doc = {
            "kind": "repro-telemetry-index",
            "version": INDEX_VERSION,
            "path": str(self.path),
            "file_bytes": self.file_bytes,
            "file_mtime_ns": self.file_mtime_ns,
            "num_events": self.num_events,
            "events_per_chunk": self.events_per_chunk,
            "event_counts": dict(self.event_counts),
            "chunks": [chunk.as_payload() for chunk in self.chunks],
        }
        target.write_text(json.dumps(doc) + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, index_path: str | Path) -> "TelemetryIndex":
        doc = json.loads(Path(index_path).read_text(encoding="utf-8"))
        if doc.get("kind") != "repro-telemetry-index":
            raise ValueError(f"{index_path}: not a telemetry index")
        if int(doc.get("version", -1)) != INDEX_VERSION:
            raise ValueError(
                f"{index_path}: index version {doc.get('version')} != {INDEX_VERSION}"
            )
        return cls(
            path=str(doc["path"]),
            file_bytes=int(doc["file_bytes"]),
            num_events=int(doc["num_events"]),
            events_per_chunk=int(doc["events_per_chunk"]),
            event_counts={str(k): int(v) for k, v in doc.get("event_counts", {}).items()},
            chunks=tuple(ChunkEntry.from_payload(raw) for raw in doc.get("chunks", [])),
            file_mtime_ns=int(doc.get("file_mtime_ns", 0)),
        )

    # -- queries -----------------------------------------------------------

    def count(self, event: str) -> int:
        return self.event_counts.get(event, 0)

    def chunks_with(self, event: str) -> Iterator[ChunkEntry]:
        """Only the chunks that contain at least one ``event``."""
        for chunk in self.chunks:
            if chunk.counts.get(event, 0):
                yield chunk


def default_index_path(path: str | Path) -> Path:
    return Path(str(path) + ".idx.json")


def load_or_build_index(
    path: str | Path,
    *,
    events_per_chunk: int = DEFAULT_EVENTS_PER_CHUNK,
    save: bool = True,
) -> TelemetryIndex:
    """Load the sidecar index if present and fresh; otherwise (re)build it."""
    index_path = default_index_path(path)
    if index_path.exists():
        try:
            index = TelemetryIndex.load(index_path)
            stat = Path(path).stat()
            # Size alone misses an in-place rewrite of identical length, so
            # freshness is (size, mtime_ns) — both must match.
            if (
                index.file_bytes == stat.st_size
                and index.file_mtime_ns == stat.st_mtime_ns
            ):
                return index
        except (ValueError, KeyError, json.JSONDecodeError):
            pass  # corrupt or stale: rebuild below
    index = TelemetryIndex.build(path, events_per_chunk)
    if save:
        index.save(index_path)
    return index


# ---------------------------------------------------------------------------
# Streaming iterators
# ---------------------------------------------------------------------------


def _iter_chunk_events(path: str | Path, chunk: ChunkEntry) -> Iterator[TelemetryEvent]:
    # Read line-by-line within the chunk's byte range rather than slurping
    # the chunk: peak memory stays O(longest line), not O(chunk bytes).
    with Path(path).open("rb") as handle:
        handle.seek(chunk.offset)
        remaining = chunk.length
        while remaining > 0:
            raw = handle.readline()
            if not raw:
                break
            remaining -= len(raw)
            line = raw.strip()
            if line:
                yield TelemetryEvent.from_json(line.decode("utf-8"))


def iter_events(
    path: str | Path,
    *,
    event: str | None = None,
    index: TelemetryIndex | None = None,
) -> Iterator[TelemetryEvent]:
    """Stream events in file order, optionally filtered by event type.

    With an index and an ``event`` filter, chunks containing none of that
    event type are skipped entirely (seek, don't scan) — on a fleet
    telemetry file, asking for the single ``run_end`` event reads a few
    chunks instead of gigabytes of ``session`` payloads.
    """
    if index is not None and event is not None:
        for chunk in index.chunks_with(event):
            for parsed in _iter_chunk_events(path, chunk):
                if parsed.event == event:
                    yield parsed
        return
    for _offset, raw in iter_event_lines(path):
        line = raw.strip()
        if not line:
            continue
        parsed = TelemetryEvent.from_json(line.decode("utf-8"))
        if event is None or parsed.event == event:
            yield parsed


def iter_session_logs(
    path: str | Path, *, index: TelemetryIndex | None = None
) -> Iterator:
    """Stream :class:`~repro.analytics.logs.SessionLog` objects one at a time."""
    for parsed in iter_events(path, event="session", index=index):
        yield session_from_payload(parsed.user_id, parsed.payload)


def last_event(
    path: str | Path, event: str, *, index: TelemetryIndex | None = None
) -> TelemetryEvent | None:
    """The last event of a given type, using the index to skip chunks."""
    found: TelemetryEvent | None = None
    for parsed in iter_events(path, event=event, index=index):
        found = parsed
    return found


def read_run_summary(
    path: str | Path, *, index: TelemetryIndex | None = None
) -> dict:
    """Index-accelerated equivalent of ``replay_run_summary`` (last run_end)."""
    event = last_event(path, "run_end", index=index)
    if event is None:
        raise ValueError(f"no run_end event found in {path}")
    return event.payload


# ---------------------------------------------------------------------------
# Bounded-memory aggregations (bit-exact vs the in-memory LogCollection)
# ---------------------------------------------------------------------------


def stream_fleet_metrics(path: str | Path, *, index: TelemetryIndex | None = None):
    """``fleet_metrics(replay_log_collection(path))`` without materialising.

    Accumulates the exact per-session terms of
    :func:`repro.fleet.orchestrator.fleet_metrics`, in the same file order,
    so every float matches the in-memory result bit-for-bit.
    """
    from repro.fleet.orchestrator import FleetMetrics  # heavy import, deferred  # contract: OBS-NEUTRAL-004 exempt(result dataclass only; aggregates replayed read-only)

    num_sessions = 0
    num_segments = 0
    segment_exits = 0
    exited_sessions = 0
    watch_time = 0.0
    stall_time = 0.0
    bitrate_sum = 0.0
    for session in iter_session_logs(path, index=index):
        trace = session.trace
        num_sessions += 1
        num_segments += len(trace)
        segment_exits += int(trace.exited_flags.sum())
        exited_sessions += int(trace.exited_early)
        watch_time += trace.watch_time
        stall_time += trace.total_stall_time
        bitrate_sum += float(trace.bitrates_kbps.sum())
    return FleetMetrics(
        num_sessions=num_sessions,
        num_segments=num_segments,
        exited_sessions=exited_sessions,
        segment_exits=segment_exits,
        total_watch_time_s=watch_time,
        total_stall_time_s=stall_time,
        mean_bitrate_kbps=bitrate_sum / num_segments if num_segments else 0.0,
    )


def stream_segment_exit_rate(
    path: str | Path, *, index: TelemetryIndex | None = None
) -> float:
    """Streaming twin of ``LogCollection.segment_exit_rate()`` (no predicate)."""
    watched = 0
    exited = 0
    for session in iter_session_logs(path, index=index):
        exited_flags = session.trace.exited_flags
        watched += exited_flags.size
        exited += int(exited_flags.sum())
    if watched == 0:
        return float("nan")
    return exited / watched


def stream_exit_rate_by_stall_time(
    path: str | Path,
    bins: Sequence[float],
    *,
    min_samples: int = 20,
    index: TelemetryIndex | None = None,
) -> np.ndarray:
    """Streaming twin of ``LogCollection.exit_rate_by_stall_time``.

    Identical per-session binning (`np.searchsorted` + `np.add.at`) over the
    same session order makes the result equal to the in-memory fast path,
    NaN placement included.
    """
    edges = np.asarray(bins, dtype=float)
    watched = np.zeros(edges.size)
    exited = np.zeros(edges.size)
    for session in iter_session_logs(path, index=index):
        cumulative = session.trace.cumulative_stall_times
        if cumulative.size == 0:
            continue
        indices = np.maximum(np.searchsorted(edges, cumulative, side="right") - 1, 0)
        np.add.at(watched, indices, 1.0)
        np.add.at(exited, indices, session.trace.exited_flags)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(watched >= min_samples, exited / watched, np.nan)
