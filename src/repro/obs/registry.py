"""Process-local metrics registry: counters, gauges, wall-time histograms.

The registry is the *numeric* half of the observability layer (the span
tracer of :mod:`repro.obs.core` is the structural half).  Three metric
families, chosen so that cross-process merging is deterministic:

``counters``
    Monotonic sums (sessions simulated, NN forwards, fallback sessions).
    Merge = addition — associative and, for the integer counters the hot
    paths emit, exactly order-independent.
``gauges``
    High-water marks (largest cohort, peak concurrent demand).  Merge =
    ``max``, which is order-independent outright.
``histograms``
    Fixed-bucket distributions (wall times, NN batch sizes).  Every
    histogram shares the same log-spaced bucket boundaries, so merge =
    element-wise bucket addition plus min/max/total folding.

Because the merge rules are per-key and order-independent for integral
values (and performed in shard order for float sums), merging the shard
registries of a fleet run yields the same snapshot no matter how many
worker processes executed the shards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Shared histogram bucket upper bounds.  Log-spaced to cover both
#: microsecond-scale kernel timings and multi-minute campaign phases (values
#: in whatever unit the caller observes — seconds for ``*_s`` histograms,
#: plain counts for batch-size histograms).  Frozen: changing them changes
#: every merged snapshot.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    float(f"{10.0 ** exponent:g}") for exponent in range(-6, 7)
)


@dataclass
class Histogram:
    """Fixed-bucket histogram with exact count/total/min/max sidecars."""

    counts: list[int] = field(
        default_factory=lambda: [0] * (len(BUCKET_BOUNDS) + 1)
    )
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = 0
        for bound in BUCKET_BOUNDS:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bucket-wise)."""
        for index, value in enumerate(other.counts):
            self.counts[index] += value
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_payload(self) -> dict:
        """JSON form (infinities encode as ``None`` for empty histograms)."""
        return {
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Histogram":
        """Inverse of :meth:`as_payload`."""
        histogram = cls(
            counts=[int(v) for v in payload["counts"]],
            count=int(payload["count"]),
            total=float(payload["total"]),
        )
        histogram.min = math.inf if payload["min"] is None else float(payload["min"])
        histogram.max = -math.inf if payload["max"] is None else float(payload["max"])
        return histogram


class MetricsRegistry:
    """One process's counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter_add(self, name: str, value: int | float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if it is a new high-water mark."""
        value = float(value)
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram()
            self.histograms[name] = histogram
        histogram.observe(value)

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold another registry (or its snapshot payload) into this one.

        Counters add, gauges take the max, histograms merge bucket-wise —
        all per-key, so the merged registry does not depend on how the
        observations were partitioned across the sources (float counter
        sums are accumulated in call order; merge shards in shard order).
        """
        if isinstance(other, dict):
            other = MetricsRegistry.from_payload(other)
        for name, value in other.counters.items():
            self.counter_add(name, value)
        for name, value in other.gauges.items():
            self.gauge_max(name, value)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = Histogram()
                self.histograms[name] = mine
            mine.merge(histogram)

    def as_payload(self) -> dict:
        """JSON snapshot with deterministically sorted keys."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "histograms": {
                name: self.histograms[name].as_payload()
                for name in sorted(self.histograms)
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MetricsRegistry":
        """Inverse of :meth:`as_payload`."""
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry.counters[name] = value
        for name, value in payload.get("gauges", {}).items():
            registry.gauges[name] = float(value)
        for name, raw in payload.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_payload(raw)
        return registry
