"""RobustMPC: model-predictive control of ``QoE_lin`` (Yin et al., SIGCOMM'15).

RobustMPC predicts throughput for the next ``horizon`` segments with a
discounted harmonic mean (the "robust" correction: divide by one plus the
maximum recent relative prediction error), enumerates every level sequence
over the horizon, simulates the buffer evolution for each sequence, scores it
with ``QoE_lin`` under the *current* :class:`~repro.abr.base.QoEParameters`
(so LingXi can re-weight stall and switch penalties at runtime), and commits
only the first decision.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.sim.session import ABRContext


class RobustMPC(ABRAlgorithm):
    """Exhaustive-search MPC over a short look-ahead horizon."""

    def __init__(
        self,
        parameters: QoEParameters | None = None,
        horizon: int = 4,
        throughput_window: int = 5,
    ) -> None:
        super().__init__(parameters)
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if throughput_window <= 0:
            raise ValueError("throughput_window must be positive")
        self.horizon = horizon
        self.throughput_window = throughput_window
        self._past_errors: list[float] = []
        self._last_prediction: float | None = None

    def reset(self) -> None:
        """Clear the prediction-error history."""
        self._past_errors = []
        self._last_prediction = None

    def _robust_throughput(self, context: ABRContext) -> float:
        history = context.throughput_history_kbps
        if history and self._last_prediction is not None:
            actual = history[-1]
            error = abs(self._last_prediction - actual) / max(actual, 1e-9)
            self._past_errors.append(error)
            if len(self._past_errors) > self.throughput_window:
                del self._past_errors[: len(self._past_errors) - self.throughput_window]
        estimate = self.estimate_throughput(context, self.throughput_window)
        max_error = max(self._past_errors) if self._past_errors else 0.0
        robust = estimate / (1.0 + max_error)
        self._last_prediction = estimate
        return max(robust, 1e-6)

    def select_level(self, context: ABRContext) -> int:
        """Enumerate level sequences over the horizon and pick the best first step."""
        ladder = context.ladder
        num_levels = ladder.num_levels
        if not context.throughput_history_kbps:
            return 0
        throughput = self._robust_throughput(context)
        qualities = ladder.qualities()
        mu = self.parameters.stall_penalty
        switch_weight = self.parameters.switch_penalty
        segment_duration = context.segment_duration
        sizes = np.asarray(context.next_segment_sizes_kbit, dtype=float)

        last_quality = (
            qualities[context.last_level] if context.last_level is not None else qualities[0]
        )
        best_score = -np.inf
        best_first = 0
        for sequence in itertools.product(range(num_levels), repeat=self.horizon):
            buffer = context.buffer
            previous_quality = last_quality
            score = 0.0
            for level in sequence:
                # Future segment sizes are approximated by the next segment's
                # ladder sizes (the standard MPC simplification).
                download_time = sizes[level] / throughput
                stall = max(download_time - buffer, 0.0)
                buffer = max(buffer - download_time, 0.0) + segment_duration
                buffer = min(buffer, context.buffer_cap)
                quality = qualities[level]
                score += quality - mu * stall - switch_weight * abs(quality - previous_quality)
                previous_quality = quality
            if score > best_score:
                best_score = score
                best_first = sequence[0]
        return best_first
