"""RobustMPC: model-predictive control of ``QoE_lin`` (Yin et al., SIGCOMM'15).

RobustMPC predicts throughput for the next ``horizon`` segments with a
discounted harmonic mean (the "robust" correction: divide by one plus the
maximum recent relative prediction error), enumerates every level sequence
over the horizon, simulates the buffer evolution for each sequence, scores it
with ``QoE_lin`` under the *current* :class:`~repro.abr.base.QoEParameters`
(so LingXi can re-weight stall and switch penalties at runtime), and commits
only the first decision.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.sim.session import ABRContext


class RobustMPC(ABRAlgorithm):
    """Exhaustive-search MPC over a short look-ahead horizon."""

    def __init__(
        self,
        parameters: QoEParameters | None = None,
        horizon: int = 4,
        throughput_window: int = 5,
    ) -> None:
        super().__init__(parameters)
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if throughput_window <= 0:
            raise ValueError("throughput_window must be positive")
        self.horizon = horizon
        self.throughput_window = throughput_window
        self._past_errors: list[float] = []
        self._last_prediction: float | None = None

    def reset(self) -> None:
        """Clear the prediction-error history."""
        self._past_errors = []
        self._last_prediction = None

    def _robust_throughput(self, context: ABRContext) -> float:
        history = context.throughput_history_kbps
        if history and self._last_prediction is not None:
            actual = history[-1]
            error = abs(self._last_prediction - actual) / max(actual, 1e-9)
            self._past_errors.append(error)
            if len(self._past_errors) > self.throughput_window:
                del self._past_errors[: len(self._past_errors) - self.throughput_window]
        estimate = self.estimate_throughput(context, self.throughput_window)
        max_error = max(self._past_errors) if self._past_errors else 0.0
        robust = estimate / (1.0 + max_error)
        self._last_prediction = estimate
        return max(robust, 1e-6)

    def select_level(self, context: ABRContext) -> int:
        """Enumerate level sequences over the horizon and pick the best first step."""
        ladder = context.ladder
        num_levels = ladder.num_levels
        if not context.throughput_history_kbps:
            return 0
        throughput = self._robust_throughput(context)
        qualities = ladder.qualities()
        mu = self.parameters.stall_penalty
        switch_weight = self.parameters.switch_penalty
        segment_duration = context.segment_duration
        sizes = np.asarray(context.next_segment_sizes_kbit, dtype=float)

        last_quality = (
            qualities[context.last_level] if context.last_level is not None else qualities[0]
        )
        best_score = -np.inf
        best_first = 0
        for sequence in itertools.product(range(num_levels), repeat=self.horizon):
            buffer = context.buffer
            previous_quality = last_quality
            score = 0.0
            for level in sequence:
                # Future segment sizes are approximated by the next segment's
                # ladder sizes (the standard MPC simplification).
                download_time = sizes[level] / throughput
                stall = max(download_time - buffer, 0.0)
                buffer = max(buffer - download_time, 0.0) + segment_duration
                buffer = min(buffer, context.buffer_cap)
                quality = qualities[level]
                score += quality - mu * stall - switch_weight * abs(quality - previous_quality)
                previous_quality = quality
            if score > best_score:
                best_score = score
                best_first = sequence[0]
        return best_first

    @classmethod
    def vector_kernel(cls, policies: Sequence["RobustMPC"]):
        """Batched :meth:`select_level` over a struct-of-arrays step context.

        RobustMPC is stateful (rolling prediction errors, last prediction);
        the kernel owns that state as per-row arrays, initialised to the
        post-:meth:`reset` state, so every row behaves exactly like a freshly
        reset scalar instance advanced call by call — including when several
        rows share one policy object (the scalar engine resets it before each
        sequential session anyway).

        The horizon enumeration is evaluated as a prefix tree: level
        sequences in ``itertools.product`` order share their prefix sums, so
        each leaf's score accumulates through the identical sequence of
        float additions the scalar loop performs, and the first-maximum
        ``argmax`` over leaves reproduces the scalar strict ``>`` tie break.
        Memory is ``O(num_levels ** horizon * N)`` per step.

        ``stall_penalty`` / ``switch_penalty`` are read from each policy's
        live :class:`~repro.abr.base.QoEParameters` at every call, so runtime
        objective adjustments (LingXi) take effect mid-batch.
        """
        horizons = np.asarray([p.horizon for p in policies], dtype=int)
        windows = np.asarray([p.throughput_window for p in policies], dtype=int)
        num_rows = len(policies)
        max_window = int(windows.max()) if num_rows else 0
        # Rolling per-row error history: one (N,) column appended per step
        # from k=2 on, trimmed to the longest policy window.
        error_columns: list[np.ndarray] = []
        last_prediction = np.full(num_rows, np.nan)

        def kernel(context) -> np.ndarray:
            if context.k == 0:
                return np.zeros(num_rows, dtype=int)
            # --- _robust_throughput, batched ---------------------------------
            # Every row records its first error at the same step (the first
            # call with a previous prediction, k == 2), so the shared column
            # list is uniform: row i's scalar ``_past_errors`` is exactly the
            # last ``min(window_i, len(error_columns))`` column entries.
            actual = context.throughput_window[:, -1]
            if num_rows and not np.isnan(last_prediction[0]):
                error = np.abs(last_prediction - actual) / np.maximum(actual, 1e-9)
                error_columns.append(error)
                if len(error_columns) > max_window:
                    del error_columns[: len(error_columns) - max_window]
            estimate = context.harmonic_throughput(windows)
            max_error = np.zeros(num_rows)
            if error_columns:
                stacked = np.stack(error_columns, axis=1)  # (N, history)
                history = stacked.shape[1]
                for window in np.unique(windows):
                    rows = windows == window
                    effective = min(int(window), history)
                    max_error[rows] = stacked[rows][:, history - effective :].max(
                        axis=1
                    )
            robust = estimate / (1.0 + max_error)
            last_prediction[:] = estimate
            throughput = np.maximum(robust, 1e-6)

            # --- horizon enumeration as a prefix tree ------------------------
            qualities = context.bitrates / 1000.0  # == ladder.qualities()
            mu = np.asarray([p.parameters.stall_penalty for p in policies])
            switch = np.asarray([p.parameters.switch_penalty for p in policies])
            sizes = context.segment_sizes  # (N, L)
            num_levels = qualities.size
            download = sizes / throughput[:, None]  # (N, L)
            last_quality = np.where(
                context.last_level >= 0,
                qualities[np.maximum(context.last_level, 0)],
                qualities[0],
            )

            result = np.zeros(num_rows, dtype=int)
            for horizon in np.unique(horizons):
                rows = np.flatnonzero(horizons == horizon)
                buffer = context.buffer[rows][None, :]  # (P, n)
                previous_quality = last_quality[rows][None, :]
                score = np.zeros((1, rows.size))
                down = download[rows].T[None, :, :]  # (1, L, n)
                cap = context.buffer_cap[rows]
                q = qualities[None, :, None]  # (1, L, 1)
                for _depth in range(int(horizon)):
                    stall = np.maximum(down - buffer[:, None, :], 0.0)
                    new_buffer = (
                        np.maximum(buffer[:, None, :] - down, 0.0)
                        + context.segment_duration
                    )
                    new_buffer = np.minimum(new_buffer, cap)
                    increment = (q - mu[rows] * stall) - switch[rows] * np.abs(
                        q - previous_quality[:, None, :]
                    )
                    score = score[:, None, :] + increment
                    paths = score.shape[0] * num_levels
                    score = score.reshape(paths, rows.size)
                    buffer = new_buffer.reshape(paths, rows.size)
                    previous_quality = np.broadcast_to(
                        q, (new_buffer.shape[0], num_levels, rows.size)
                    ).reshape(paths, rows.size)
                best_leaf = np.argmax(score, axis=0)
                result[rows] = best_leaf // num_levels ** (int(horizon) - 1)
            return result

        return kernel
