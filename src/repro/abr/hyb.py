"""HYB: hybrid throughput/buffer rule with tunable aggressiveness ``beta``.

HYB (Akhtar et al., SIGCOMM'18 baseline; §5.3 of the LingXi paper) has no
explicit QoE objective: it picks the highest bitrate whose expected download
time stays within a fraction ``beta`` of the current buffer,
``d_k(Q)/C < beta * B``.  ``beta`` trades bandwidth-estimate confidence
against stall risk, which is exactly the knob LingXi tunes per user in the
production A/B test.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.sim.session import ABRContext


class HYB(ABRAlgorithm):
    """Highest bitrate satisfying ``segment_size / throughput < beta * buffer``."""

    def __init__(
        self,
        parameters: QoEParameters | None = None,
        throughput_window: int = 5,
        startup_level: int = 0,
    ) -> None:
        super().__init__(parameters)
        if throughput_window <= 0:
            raise ValueError("throughput_window must be positive")
        if startup_level < 0:
            raise ValueError("startup_level must be non-negative")
        self.throughput_window = throughput_window
        self.startup_level = startup_level

    def select_level(self, context: ABRContext) -> int:
        """Apply the HYB rule to the current context."""
        if not context.throughput_history_kbps:
            return min(self.startup_level, context.ladder.num_levels - 1)
        throughput = self.estimate_throughput(context, self.throughput_window)
        budget = self.parameters.beta * max(context.buffer, 0.0)
        chosen = 0
        for level in range(context.ladder.num_levels):
            download_time = context.next_segment_sizes_kbit[level] / max(throughput, 1e-9)
            if download_time < budget:
                chosen = level
        return chosen

    @classmethod
    def vector_kernel(cls, policies: Sequence["HYB"]):
        """Batched :meth:`select_level` over a struct-of-arrays step context.

        Returns ``kernel(context) -> levels`` matching the scalar rule
        bit-for-bit: the highest rung whose expected download time stays
        strictly below ``beta * buffer`` (0 if none qualifies), with the
        startup level before any throughput has been observed.  ``beta`` is
        read from each policy's live :class:`~repro.abr.base.QoEParameters`
        at every call, so runtime objective adjustments (LingXi) take effect
        mid-batch exactly as they would in the scalar loop.
        """
        window = np.asarray([p.throughput_window for p in policies], dtype=int)
        startup = np.asarray([p.startup_level for p in policies], dtype=int)

        def kernel(context) -> np.ndarray:
            num_levels = context.bitrates.size
            if context.k == 0:
                return np.minimum(startup, num_levels - 1)
            beta = np.asarray([p.parameters.beta for p in policies], dtype=float)
            throughput = context.harmonic_throughput(window)
            budget = beta * np.maximum(context.buffer, 0.0)
            download_times = context.segment_sizes / np.maximum(throughput, 1e-9)[:, None]
            feasible = download_times < budget[:, None]
            highest = num_levels - 1 - np.argmax(feasible[:, ::-1], axis=1)
            return np.where(feasible.any(axis=1), highest, 0)

        return kernel
