"""HYB: hybrid throughput/buffer rule with tunable aggressiveness ``beta``.

HYB (Akhtar et al., SIGCOMM'18 baseline; §5.3 of the LingXi paper) has no
explicit QoE objective: it picks the highest bitrate whose expected download
time stays within a fraction ``beta`` of the current buffer,
``d_k(Q)/C < beta * B``.  ``beta`` trades bandwidth-estimate confidence
against stall risk, which is exactly the knob LingXi tunes per user in the
production A/B test.
"""

from __future__ import annotations

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.sim.session import ABRContext


class HYB(ABRAlgorithm):
    """Highest bitrate satisfying ``segment_size / throughput < beta * buffer``."""

    def __init__(
        self,
        parameters: QoEParameters | None = None,
        throughput_window: int = 5,
        startup_level: int = 0,
    ) -> None:
        super().__init__(parameters)
        if throughput_window <= 0:
            raise ValueError("throughput_window must be positive")
        if startup_level < 0:
            raise ValueError("startup_level must be non-negative")
        self.throughput_window = throughput_window
        self.startup_level = startup_level

    def select_level(self, context: ABRContext) -> int:
        """Apply the HYB rule to the current context."""
        if not context.throughput_history_kbps:
            return min(self.startup_level, context.ladder.num_levels - 1)
        throughput = self.estimate_throughput(context, self.throughput_window)
        budget = self.parameters.beta * max(context.buffer, 0.0)
        chosen = 0
        for level in range(context.ladder.num_levels):
            download_time = context.next_segment_sizes_kbit[level] / max(throughput, 1e-9)
            if download_time < budget:
                chosen = level
        return chosen
