"""Pensieve-style neural ABR (Mao et al., SIGCOMM'17) with LingXi's augmentation.

The policy maps a playback state to a distribution over ladder levels and is
trained with an advantage policy gradient against the ``QoE_lin`` reward.  As
described in §5.2 of the LingXi paper, the architecture is augmented so the
stall and switch weights of the optimization objective are *state inputs*:
rewards during training are computed with whatever weights the episode drew,
so at inference time changing :class:`~repro.abr.base.QoEParameters` steers
the already-trained policy toward the corresponding objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import MeanSquaredError, softmax
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.sim.bandwidth import BandwidthTrace
from repro.sim.session import ABRContext, PlaybackSession, PlaybackTrace, SessionConfig
from repro.sim.video import Video

_HISTORY = 6
_THROUGHPUT_SCALE = 8000.0
_TIME_SCALE = 10.0
_SIZE_SCALE = 8000.0
_STALL_PENALTY_SCALE = 20.0
_SWITCH_PENALTY_SCALE = 4.0


class Pensieve(ABRAlgorithm):
    """Actor–critic neural ABR conditioned on the objective weights."""

    def __init__(
        self,
        parameters: QoEParameters | None = None,
        num_levels: int = 4,
        hidden: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(parameters)
        if num_levels < 2:
            raise ValueError("num_levels must be at least 2")
        self.num_levels = num_levels
        self.state_dim = 2 * _HISTORY + num_levels + 1 + num_levels + 1 + 2
        self.actor = Sequential(
            [
                Dense(self.state_dim, hidden, seed=seed),
                ReLU(),
                Dense(hidden, num_levels, seed=seed + 1),
            ]
        )
        self.critic = Sequential(
            [
                Dense(self.state_dim, hidden, seed=seed + 2),
                ReLU(),
                Dense(hidden, 1, seed=seed + 3),
            ]
        )
        self.exploration = False
        self._rng = np.random.default_rng(seed)
        self.trajectory: list[tuple[np.ndarray, int]] = []
        self._download_history: list[float] = []

    def reset(self) -> None:
        """Clear the per-session trajectory and download-time history."""
        self.trajectory = []
        self._download_history = []

    def state_from_context(self, context: ABRContext) -> np.ndarray:
        """Build the normalised state vector for the policy network."""
        throughputs = np.zeros(_HISTORY)
        history = context.throughput_history_kbps[-_HISTORY:]
        if history:
            throughputs[-len(history) :] = np.asarray(history) / _THROUGHPUT_SCALE
        download_times = np.zeros(_HISTORY)
        recent_downloads = self._download_history[-_HISTORY:]
        if recent_downloads:
            download_times[-len(recent_downloads) :] = (
                np.asarray(recent_downloads) / _TIME_SCALE
            )
        sizes = np.asarray(context.next_segment_sizes_kbit, dtype=float)[: self.num_levels]
        if sizes.size < self.num_levels:
            sizes = np.pad(sizes, (0, self.num_levels - sizes.size), mode="edge")
        sizes = sizes / _SIZE_SCALE
        buffer = np.asarray([context.buffer / _TIME_SCALE])
        last_level = np.zeros(self.num_levels)
        if context.last_level is not None:
            last_level[min(context.last_level, self.num_levels - 1)] = 1.0
        progress = np.asarray([min(context.segment_index / 100.0, 1.0)])
        objective = np.asarray(
            [
                self.parameters.stall_penalty / _STALL_PENALTY_SCALE,
                self.parameters.switch_penalty / _SWITCH_PENALTY_SCALE,
            ]
        )
        return np.concatenate(
            [throughputs, download_times, sizes, buffer, last_level, progress, objective]
        )

    def action_probabilities(self, state: np.ndarray) -> np.ndarray:
        """Policy distribution over ladder levels for one state."""
        logits = self.actor.forward(state[None, :])
        return softmax(logits)[0]

    def select_level(self, context: ABRContext) -> int:
        """Sample (training) or argmax (inference) an action from the policy."""
        state = self.state_from_context(context)
        probabilities = self.action_probabilities(state)
        if self.exploration:
            action = int(self._rng.choice(self.num_levels, p=probabilities))
        else:
            action = int(np.argmax(probabilities))
        self.trajectory.append((state, action))
        # Approximate the upcoming download time for the next state's history.
        throughput = max(context.bandwidth_mean_kbps, 1e-6)
        self._download_history.append(
            context.next_segment_sizes_kbit[min(action, len(context.next_segment_sizes_kbit) - 1)]
            / throughput
        )
        return min(action, context.ladder.num_levels - 1)


@dataclass
class TrainingStats:
    """Per-iteration summary returned by :meth:`PensieveTrainer.train`."""

    iteration: int
    mean_reward: float
    mean_entropy: float
    critic_loss: float


class PensieveTrainer:
    """Advantage policy-gradient trainer run entirely inside the simulator."""

    def __init__(
        self,
        agent: Pensieve,
        videos: list[Video],
        traces: list[BandwidthTrace],
        discount: float = 0.95,
        actor_learning_rate: float = 1e-3,
        critic_learning_rate: float = 2e-3,
        entropy_weight: float = 0.01,
        randomize_objective: bool = True,
        stall_penalty_range: tuple[float, float] = (1.0, 20.0),
        switch_penalty_range: tuple[float, float] = (0.0, 4.0),
        seed: int = 0,
    ) -> None:
        if not videos or not traces:
            raise ValueError("need at least one video and one trace")
        if not 0 < discount <= 1:
            raise ValueError("discount must be in (0, 1]")
        self.agent = agent
        self.videos = videos
        self.traces = traces
        self.discount = discount
        self.entropy_weight = entropy_weight
        self.randomize_objective = randomize_objective
        self.stall_penalty_range = stall_penalty_range
        self.switch_penalty_range = switch_penalty_range
        self.actor_optimizer = Adam(learning_rate=actor_learning_rate)
        self.critic_optimizer = Adam(learning_rate=critic_learning_rate)
        self.rng = np.random.default_rng(seed)
        self.session = PlaybackSession(SessionConfig())

    def _episode_rewards(self, playback: PlaybackTrace, parameters: QoEParameters) -> np.ndarray:
        qualities = playback.bitrates_kbps / 1000.0
        stalls = playback.stall_times
        switches = np.abs(np.diff(qualities, prepend=qualities[:1]))
        return (
            qualities
            - parameters.stall_penalty * stalls
            - parameters.switch_penalty * switches
        )

    def run_episode(self, parameters: QoEParameters | None = None) -> tuple[list, np.ndarray]:
        """Play one episode with exploration on; returns (trajectory, rewards)."""
        if parameters is None:
            if self.randomize_objective:
                parameters = QoEParameters(
                    stall_penalty=float(self.rng.uniform(*self.stall_penalty_range)),
                    switch_penalty=float(self.rng.uniform(*self.switch_penalty_range)),
                )
            else:
                parameters = self.agent.parameters
        self.agent.set_parameters(parameters)
        self.agent.exploration = True
        video = self.videos[int(self.rng.integers(len(self.videos)))]
        trace = self.traces[int(self.rng.integers(len(self.traces)))]
        playback = self.session.run(self.agent, video, trace, rng=self.rng)
        trajectory = list(self.agent.trajectory)
        rewards = self._episode_rewards(playback, parameters)
        self.agent.exploration = False
        return trajectory, rewards

    def _returns(self, rewards: np.ndarray) -> np.ndarray:
        returns = np.zeros_like(rewards)
        running = 0.0
        for i in range(rewards.size - 1, -1, -1):
            running = rewards[i] + self.discount * running
            returns[i] = running
        return returns

    def train(self, iterations: int = 20, episodes_per_iteration: int = 4) -> list[TrainingStats]:
        """Run policy-gradient training; returns per-iteration statistics."""
        if iterations <= 0 or episodes_per_iteration <= 0:
            raise ValueError("iterations and episodes_per_iteration must be positive")
        history: list[TrainingStats] = []
        mse = MeanSquaredError()
        for iteration in range(iterations):
            states: list[np.ndarray] = []
            actions: list[int] = []
            returns: list[float] = []
            reward_total = 0.0
            for _ in range(episodes_per_iteration):
                trajectory, rewards = self.run_episode()
                episode_returns = self._returns(rewards)
                for (state, action), ret in zip(trajectory, episode_returns):
                    states.append(state)
                    actions.append(action)
                    returns.append(float(ret))
                reward_total += float(rewards.sum())
            state_matrix = np.asarray(states)
            action_vector = np.asarray(actions, dtype=int)
            return_vector = np.asarray(returns, dtype=float)

            # Critic update (value baseline).
            values = self.critic.forward(state_matrix)
            critic_loss = mse.forward(values, return_vector[:, None])
            self.critic.backward(mse.backward())
            self.critic_optimizer.step(self.critic.parameters, self.critic.gradients)

            # Actor update with advantage = return - value (pre-update values).
            advantages = return_vector - values[:, 0]
            if advantages.std() > 1e-9:
                advantages = (advantages - advantages.mean()) / advantages.std()
            logits = self.actor.forward(state_matrix)
            probabilities = softmax(logits)
            one_hot = np.zeros_like(probabilities)
            one_hot[np.arange(action_vector.size), action_vector] = 1.0
            # d/dlogits of -log pi(a) * A  plus the entropy bonus gradient.
            grad_logits = (probabilities - one_hot) * advantages[:, None]
            entropy = -np.sum(probabilities * np.log(probabilities + 1e-12), axis=1)
            grad_entropy = probabilities * (
                np.log(probabilities + 1e-12)
                + 1.0
                - np.sum(probabilities * (np.log(probabilities + 1e-12) + 1.0), axis=1, keepdims=True)
            )
            grad_logits += self.entropy_weight * grad_entropy
            grad_logits /= max(action_vector.size, 1)
            self.actor.backward(grad_logits)
            self.actor_optimizer.step(self.actor.parameters, self.actor.gradients)

            history.append(
                TrainingStats(
                    iteration=iteration,
                    mean_reward=reward_total / episodes_per_iteration,
                    mean_entropy=float(entropy.mean()),
                    critic_loss=float(critic_loss),
                )
            )
        return history

    @property
    def actor(self) -> Sequential:
        """The agent's policy network."""
        return self.agent.actor

    @property
    def critic(self) -> Sequential:
        """The agent's value network."""
        return self.agent.critic
