"""Throughput-based rate matching (FESTIVE/PANDA-style baseline).

Picks the highest rung whose nominal bitrate stays below a safety fraction of
the harmonic-mean throughput estimate, with an optional one-level-per-segment
switch limiter for smoothness (the "gradual switching" idea of FESTIVE).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.sim.session import ABRContext


class ThroughputRule(ABRAlgorithm):
    """Rate-matching rule with a safety margin and gradual switching."""

    def __init__(
        self,
        parameters: QoEParameters | None = None,
        safety: float = 0.85,
        window: int = 5,
        gradual: bool = True,
    ) -> None:
        super().__init__(parameters)
        if not 0 < safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        if window <= 0:
            raise ValueError("window must be positive")
        self.safety = safety
        self.window = window
        self.gradual = gradual

    def select_level(self, context: ABRContext) -> int:
        """Match the sustainable bitrate, moving at most one rung when gradual."""
        if not context.throughput_history_kbps:
            return 0
        estimate = self.safety * self.estimate_throughput(context, self.window)
        target = context.ladder.level_for_bitrate(estimate)
        if not self.gradual or context.last_level is None:
            return target
        if target > context.last_level:
            return context.last_level + 1
        if target < context.last_level:
            return context.last_level - 1
        return target

    @classmethod
    def vector_kernel(cls, policies: Sequence["ThroughputRule"]):
        """Batched :meth:`select_level` over a struct-of-arrays step context.

        Returns ``kernel(context) -> levels`` where ``context`` is a
        :class:`repro.sim.vector.VectorStepContext` covering one session per
        policy.  The kernel reproduces the scalar decision bit-for-bit: the
        same harmonic-mean estimate, the same ``level_for_bitrate`` threshold
        semantics (via ``searchsorted(side="right")``), the same one-rung
        gradual switching.
        """
        safety = np.asarray([p.safety for p in policies], dtype=float)
        window = np.asarray([p.window for p in policies], dtype=int)
        gradual = np.asarray([p.gradual for p in policies], dtype=bool)

        def kernel(context) -> np.ndarray:
            if context.k == 0:
                return np.zeros(safety.size, dtype=int)
            estimate = safety * context.harmonic_throughput(window)
            target = np.maximum(
                np.searchsorted(context.bitrates, estimate, side="right") - 1, 0
            )
            stepped = context.last_level + np.sign(target - context.last_level)
            return np.where(gradual, stepped, target)

        return kernel
