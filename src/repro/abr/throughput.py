"""Throughput-based rate matching (FESTIVE/PANDA-style baseline).

Picks the highest rung whose nominal bitrate stays below a safety fraction of
the harmonic-mean throughput estimate, with an optional one-level-per-segment
switch limiter for smoothness (the "gradual switching" idea of FESTIVE).
"""

from __future__ import annotations

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.sim.session import ABRContext


class ThroughputRule(ABRAlgorithm):
    """Rate-matching rule with a safety margin and gradual switching."""

    def __init__(
        self,
        parameters: QoEParameters | None = None,
        safety: float = 0.85,
        window: int = 5,
        gradual: bool = True,
    ) -> None:
        super().__init__(parameters)
        if not 0 < safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        if window <= 0:
            raise ValueError("window must be positive")
        self.safety = safety
        self.window = window
        self.gradual = gradual

    def select_level(self, context: ABRContext) -> int:
        """Match the sustainable bitrate, moving at most one rung when gradual."""
        if not context.throughput_history_kbps:
            return 0
        estimate = self.safety * self.estimate_throughput(context, self.window)
        target = context.ladder.level_for_bitrate(estimate)
        if not self.gradual or context.last_level is None:
            return target
        if target > context.last_level:
            return context.last_level + 1
        if target < context.last_level:
            return context.last_level - 1
        return target
