"""BBA: buffer-based rate adaptation (Huang et al., SIGCOMM'14).

The classic reservoir/cushion rule: below the reservoir play the lowest
bitrate, above reservoir+cushion play the highest, and map linearly in
between.  BBA ignores throughput entirely, which makes it a useful implicit
QoE baseline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.sim.session import ABRContext


class BBA(ABRAlgorithm):
    """Buffer-based adaptation with a linear reservoir→cushion ramp."""

    def __init__(
        self,
        parameters: QoEParameters | None = None,
        reservoir_s: float = 4.0,
        cushion_s: float = 8.0,
    ) -> None:
        super().__init__(parameters)
        if reservoir_s <= 0 or cushion_s <= 0:
            raise ValueError("reservoir and cushion must be positive")
        self.reservoir_s = reservoir_s
        self.cushion_s = cushion_s

    def select_level(self, context: ABRContext) -> int:
        """Map the current buffer level onto the ladder."""
        buffer = context.buffer
        num_levels = context.ladder.num_levels
        if buffer <= self.reservoir_s:
            return 0
        if buffer >= self.reservoir_s + self.cushion_s:
            return num_levels - 1
        fraction = (buffer - self.reservoir_s) / self.cushion_s
        return int(np.clip(int(fraction * num_levels), 0, num_levels - 1))

    @classmethod
    def vector_kernel(cls, policies: Sequence["BBA"]):
        """Batched :meth:`select_level` over a struct-of-arrays step context.

        Returns ``kernel(context) -> levels`` reproducing the scalar
        reservoir/cushion mapping exactly (BBA only looks at the buffer, so
        the kernel is a handful of array comparisons).
        """
        reservoir = np.asarray([p.reservoir_s for p in policies], dtype=float)
        cushion = np.asarray([p.cushion_s for p in policies], dtype=float)

        def kernel(context) -> np.ndarray:
            num_levels = context.bitrates.size
            buffer = context.buffer
            fraction = (buffer - reservoir) / cushion
            levels = np.clip((fraction * num_levels).astype(int), 0, num_levels - 1)
            levels = np.where(buffer <= reservoir, 0, levels)
            return np.where(buffer >= reservoir + cushion, num_levels - 1, levels)

        return kernel
