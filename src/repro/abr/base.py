"""Common ABR interface and the runtime-adjustable objective parameters.

LingXi "supports arbitrary ABR algorithms (regardless of whether they have
explicit optimization objectives) by incorporating a dynamic QoE adjustment
module that modifies optimization objectives during runtime" (§1).  The
contract that makes this possible is :class:`QoEParameters`: every ABR in
this package reads its tunable objective from such an object and accepts a
replacement at any time through :meth:`ABRAlgorithm.set_parameters`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace

import numpy as np

from repro.sim.session import ABRContext


@dataclass(frozen=True)
class QoEParameters:
    """Tunable objective parameters shared by all ABR algorithms.

    Attributes
    ----------
    stall_penalty:
        Weight ``mu`` of stall time in ``QoE_lin`` (Equation 1).  The paper's
        simulation sweeps this between 1 and 20.
    switch_penalty:
        Weight of the quality-switch term in ``QoE_lin`` (0–4 in the paper).
    beta:
        Aggressiveness parameter of implicit-QoE algorithms such as HYB
        (§5.3): the highest bitrate with ``d_k(Q)/C < beta * B`` is selected,
        so smaller values are more conservative.
    """

    stall_penalty: float = 4.3
    switch_penalty: float = 1.0
    beta: float = 0.9

    def __post_init__(self) -> None:
        if self.stall_penalty < 0:
            raise ValueError("stall_penalty must be non-negative")
        if self.switch_penalty < 0:
            raise ValueError("switch_penalty must be non-negative")
        if not 0 < self.beta <= 2.0:
            raise ValueError("beta must be in (0, 2]")

    def replace(self, **changes) -> "QoEParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_array(self) -> np.ndarray:
        """Vector form ``[stall_penalty, switch_penalty, beta]`` (for optimizers)."""
        return np.asarray([self.stall_penalty, self.switch_penalty, self.beta], dtype=float)

    @classmethod
    def from_array(cls, values: np.ndarray) -> "QoEParameters":
        """Inverse of :meth:`to_array`."""
        values = np.asarray(values, dtype=float)
        if values.shape != (3,):
            raise ValueError("expected a length-3 vector")
        return cls(
            stall_penalty=float(values[0]),
            switch_penalty=float(values[1]),
            beta=float(values[2]),
        )


class ABRAlgorithm(abc.ABC):
    """Base class for all ABR algorithms.

    Subclasses implement :meth:`select_level`; the base class manages the
    runtime-adjustable :class:`QoEParameters` and provides a default
    throughput estimator shared by several rules.
    """

    def __init__(self, parameters: QoEParameters | None = None) -> None:
        self._parameters = parameters or QoEParameters()

    @property
    def parameters(self) -> QoEParameters:
        """Current objective parameters."""
        return self._parameters

    def set_parameters(self, parameters: QoEParameters) -> None:
        """Swap in new objective parameters (LingXi's adjustment hook)."""
        if not isinstance(parameters, QoEParameters):
            raise TypeError("parameters must be a QoEParameters instance")
        self._parameters = parameters

    @abc.abstractmethod
    def select_level(self, context: ABRContext) -> int:
        """Pick the ladder level for the next segment."""

    def reset(self) -> None:
        """Clear per-session state (default: nothing to clear)."""

    @property
    def name(self) -> str:
        """Algorithm name (class name by default)."""
        return type(self).__name__

    @staticmethod
    def estimate_throughput(context: ABRContext, window: int = 5) -> float:
        """Harmonic-mean throughput estimate over the recent window (kbps)."""
        history = context.throughput_history_kbps[-window:]
        if not history:
            return context.bandwidth_mean_kbps
        values = np.asarray(history, dtype=float)
        values = values[values > 0]
        if values.size == 0:
            return context.bandwidth_mean_kbps
        return float(values.size / np.sum(1.0 / values))
