"""BOLA: Lyapunov-based bitrate adaptation (Spiteri et al., ToN'20).

For each candidate level the rule scores
``(V * (utility + gamma * p) - buffer) / segment_size`` and picks the level
with the highest non-negative score (falling back to the lowest level when
every score is negative, i.e. the buffer is critically low).  Utilities are
the logarithm of the size ratio to the lowest rung, the standard BOLA choice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.sim.session import ABRContext


class BOLA(ABRAlgorithm):
    """BOLA utility-maximising rule."""

    def __init__(
        self,
        parameters: QoEParameters | None = None,
        gamma_p: float = 5.0,
        buffer_target_fraction: float = 0.9,
    ) -> None:
        super().__init__(parameters)
        if gamma_p <= 0:
            raise ValueError("gamma_p must be positive")
        if not 0 < buffer_target_fraction <= 1:
            raise ValueError("buffer_target_fraction must be in (0, 1]")
        self.gamma_p = gamma_p
        self.buffer_target_fraction = buffer_target_fraction

    def select_level(self, context: ABRContext) -> int:
        """Maximise the BOLA objective for the next segment."""
        sizes = np.asarray(context.next_segment_sizes_kbit, dtype=float)
        utilities = np.log(sizes / sizes[0])
        # Control parameter V sized so the top rung is reachable at the buffer target.
        buffer_target = self.buffer_target_fraction * context.buffer_cap
        v = max(
            (buffer_target - context.segment_duration)
            / (utilities[-1] + self.gamma_p),
            1e-6,
        )
        scores = (v * (utilities + self.gamma_p) - context.buffer) / sizes
        best = int(np.argmax(scores))
        if scores[best] < 0:
            return 0
        return best

    @classmethod
    def vector_kernel(cls, policies: Sequence["BOLA"]):
        """Batched :meth:`select_level` over a struct-of-arrays step context.

        Returns ``kernel(context) -> levels`` reproducing the scalar rule
        bit-for-bit: utilities, the control parameter ``V`` and the per-level
        scores are all elementwise expressions in the scalar code's exact
        floating-point operation order, ``argmax`` keeps the scalar
        first-maximum tie break, and a negative best score falls back to the
        lowest rung exactly as the scalar rule does.
        """
        gamma_p = np.asarray([p.gamma_p for p in policies], dtype=float)
        target_fraction = np.asarray(
            [p.buffer_target_fraction for p in policies], dtype=float
        )

        def kernel(context) -> np.ndarray:
            sizes = context.segment_sizes  # (N, L)
            utilities = np.log(sizes / sizes[:, :1])
            buffer_target = target_fraction * context.buffer_cap
            v = np.maximum(
                (buffer_target - context.segment_duration)
                / (utilities[:, -1] + gamma_p),
                1e-6,
            )
            scores = (
                v[:, None] * (utilities + gamma_p[:, None]) - context.buffer[:, None]
            ) / sizes
            best = np.argmax(scores, axis=1)
            return np.where(scores[np.arange(best.size), best] < 0, 0, best)

        return kernel
