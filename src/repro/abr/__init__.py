"""Adaptive bitrate (ABR) algorithms.

All algorithms implement the :class:`repro.abr.base.ABRAlgorithm` interface:
they pick one ladder level per segment from an
:class:`~repro.sim.session.ABRContext` snapshot, and they expose a runtime
adjustable :class:`~repro.abr.base.QoEParameters` object — the hook LingXi
uses to re-tune the optimization objective per user (stall/switch weights for
explicit-QoE algorithms like RobustMPC and Pensieve, the aggressiveness
``beta`` for implicit-QoE algorithms like HYB).

Implemented algorithms:

* :class:`~repro.abr.hyb.HYB` — max bitrate with ``d_k(Q)/C < beta * B`` (§5.3).
* :class:`~repro.abr.bba.BBA` — buffer-based rate adaptation.
* :class:`~repro.abr.bola.BOLA` — Lyapunov utility maximisation.
* :class:`~repro.abr.throughput.ThroughputRule` — harmonic-mean rate matching.
* :class:`~repro.abr.robust_mpc.RobustMPC` — model-predictive control of
  ``QoE_lin`` over a look-ahead horizon.
* :class:`~repro.abr.pensieve.Pensieve` — policy-gradient neural ABR with the
  paper's augmentation (objective weights are part of the state).
"""

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.abr.hyb import HYB
from repro.abr.bba import BBA
from repro.abr.bola import BOLA
from repro.abr.throughput import ThroughputRule
from repro.abr.robust_mpc import RobustMPC
from repro.abr.pensieve import Pensieve, PensieveTrainer

__all__ = [
    "ABRAlgorithm",
    "QoEParameters",
    "HYB",
    "BBA",
    "BOLA",
    "ThroughputRule",
    "RobustMPC",
    "Pensieve",
    "PensieveTrainer",
]
