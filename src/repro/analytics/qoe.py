"""Linear QoE model (Equation 1) and per-session QoS summaries."""

from __future__ import annotations

import numpy as np

from repro.sim.session import PlaybackTrace


def qoe_lin_components(
    qualities: np.ndarray, stall_times: np.ndarray
) -> tuple[float, float, float]:
    """Return the three raw components of ``QoE_lin``.

    ``(sum quality, sum stall time, sum |quality switches|)`` — the caller
    applies the weights.  ``qualities`` are the per-segment quality values
    ``q(Q_k)`` and ``stall_times`` the per-segment stall durations.
    """
    qualities = np.asarray(qualities, dtype=float)
    stall_times = np.asarray(stall_times, dtype=float)
    if qualities.shape != stall_times.shape:
        raise ValueError("qualities and stall_times must have the same length")
    if qualities.size == 0:
        return 0.0, 0.0, 0.0
    quality_sum = float(qualities.sum())
    stall_sum = float(stall_times.sum())
    switch_sum = float(np.abs(np.diff(qualities)).sum())
    return quality_sum, stall_sum, switch_sum


def qoe_lin(
    qualities: np.ndarray,
    stall_times: np.ndarray,
    stall_penalty: float,
    switch_penalty: float = 1.0,
) -> float:
    """``QoE_lin = sum q(Q_k) - mu * sum T_k - w * sum |q(Q_{k+1}) - q(Q_k)|``.

    Equation 1 uses a unit switch weight; the generalised ``switch_penalty``
    is what the simulation study (§5.2) sweeps between 0 and 4.
    """
    if stall_penalty < 0 or switch_penalty < 0:
        raise ValueError("penalties must be non-negative")
    quality_sum, stall_sum, switch_sum = qoe_lin_components(qualities, stall_times)
    return quality_sum - stall_penalty * stall_sum - switch_penalty * switch_sum


def session_qoe_lin(
    trace: PlaybackTrace, stall_penalty: float | None = None, switch_penalty: float = 1.0
) -> float:
    """``QoE_lin`` of a playback trace.

    When ``stall_penalty`` is omitted the paper's choice is used: the maximum
    video quality value (the top rung's bitrate in Mbps).
    """
    if not trace.records:
        return 0.0
    qualities = trace.bitrates_kbps / 1000.0
    if stall_penalty is None:
        stall_penalty = float(np.max(qualities))
    return qoe_lin(qualities, trace.stall_times, stall_penalty, switch_penalty)
