"""Daily per-group metric aggregation used by the A/B campaigns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.analytics.logs import LogCollection, SessionLog
from repro.analytics.qoe import session_qoe_lin


@dataclass(frozen=True)
class GroupDailyMetrics:
    """Aggregate QoS/QoE metrics of one group on one day."""

    day: int
    group: str
    total_watch_time: float
    mean_bitrate_kbps: float
    total_stall_time: float
    stall_count: int
    qoe_lin: float
    num_sessions: int

    @property
    def stall_seconds_per_hour(self) -> float:
        """Stall time normalised by watch time (seconds of stall per watch-hour).

        More stable than the raw total for small simulated populations, where
        a single heavy session can dominate a day's total.
        """
        if self.total_watch_time <= 0:
            return 0.0
        return 3600.0 * self.total_stall_time / self.total_watch_time

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (handy for printing benchmark tables)."""
        return {
            "day": float(self.day),
            "total_watch_time": self.total_watch_time,
            "mean_bitrate_kbps": self.mean_bitrate_kbps,
            "total_stall_time": self.total_stall_time,
            "stall_seconds_per_hour": self.stall_seconds_per_hour,
            "stall_count": float(self.stall_count),
            "qoe_lin": self.qoe_lin,
            "num_sessions": float(self.num_sessions),
        }


def aggregate_daily_metrics(
    sessions: Iterable[SessionLog],
    group: str,
    stall_penalty: float | None = None,
) -> list[GroupDailyMetrics]:
    """Aggregate a group's sessions into one metrics row per day."""
    by_day: dict[int, list[SessionLog]] = {}
    for session in sessions:
        by_day.setdefault(session.day, []).append(session)
    rows: list[GroupDailyMetrics] = []
    for day in sorted(by_day):
        day_sessions = by_day[day]
        watch_time = sum(s.watch_time for s in day_sessions)
        stall_time = sum(s.total_stall_time for s in day_sessions)
        stall_count = sum(s.stall_count for s in day_sessions)
        bitrates = [s.trace.mean_bitrate_kbps for s in day_sessions if s.records]
        qoe_values = [
            session_qoe_lin(s.trace, stall_penalty=stall_penalty) for s in day_sessions if s.records
        ]
        rows.append(
            GroupDailyMetrics(
                day=day,
                group=group,
                total_watch_time=float(watch_time),
                mean_bitrate_kbps=float(np.mean(bitrates)) if bitrates else 0.0,
                total_stall_time=float(stall_time),
                stall_count=int(stall_count),
                qoe_lin=float(np.sum(qoe_values)) if qoe_values else 0.0,
                num_sessions=len(day_sessions),
            )
        )
    return rows


def normalize_series(values: Sequence[float], reference: Sequence[float]) -> np.ndarray:
    """Element-wise ratio ``values / reference`` (the paper's "Norm." series)."""
    values_arr = np.asarray(values, dtype=float)
    reference_arr = np.asarray(reference, dtype=float)
    if values_arr.shape != reference_arr.shape:
        raise ValueError("values and reference must have the same shape")
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(reference_arr != 0, values_arr / reference_arr, np.nan)


def metrics_from_logs(
    logs: LogCollection, group: str, stall_penalty: float | None = None
) -> list[GroupDailyMetrics]:
    """Shorthand for :func:`aggregate_daily_metrics` over a :class:`LogCollection`."""
    return aggregate_daily_metrics(logs.sessions, group, stall_penalty=stall_penalty)
