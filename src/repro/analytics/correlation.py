"""Correlation and trend-line helpers for the user-level analyses (§5.5)."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient between two samples."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValueError("x and y must have the same length")
    if x_arr.size < 2:
        raise ValueError("need at least two points")
    if x_arr.std() == 0 or y_arr.std() == 0:
        return 0.0
    return float(np.corrcoef(x_arr, y_arr)[0, 1])


def linear_trend(x: Sequence[float], y: Sequence[float]) -> tuple[float, float]:
    """Least-squares line ``y ≈ slope * x + intercept``; returns (slope, intercept)."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValueError("x and y must have the same length")
    if x_arr.size < 2:
        raise ValueError("need at least two points")
    slope, intercept = np.polyfit(x_arr, y_arr, deg=1)
    return float(slope), float(intercept)
