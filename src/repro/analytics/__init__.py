"""Analytics: QoE metrics, log aggregation, A/B testing and correlations.

* :mod:`repro.analytics.qoe` — ``QoE_lin`` (Equation 1) and per-session QoS
  summaries.
* :mod:`repro.analytics.logs` — production-style playback log schema
  (session-level records wrapping per-segment traces) and aggregation helpers
  used by the §2 analyses.
* :mod:`repro.analytics.abtest` — A/B campaign bookkeeping, normalized daily
  metrics, Welch t-tests and difference-in-differences estimation (§5.3).
* :mod:`repro.analytics.correlation` — Pearson correlation and least-squares
  trend lines (§5.5).
"""

from repro.analytics.qoe import qoe_lin, qoe_lin_components, session_qoe_lin
from repro.analytics.logs import SessionLog, LogCollection, LinkUtilizationLog
from repro.analytics.metrics import GroupDailyMetrics, aggregate_daily_metrics
from repro.analytics.abtest import (
    ABTestResult,
    ArmComparison,
    compare_arm_series,
    welch_ttest,
    relative_improvement,
    difference_in_differences,
)
from repro.analytics.correlation import pearson_correlation, linear_trend

__all__ = [
    "qoe_lin",
    "qoe_lin_components",
    "session_qoe_lin",
    "SessionLog",
    "LogCollection",
    "LinkUtilizationLog",
    "GroupDailyMetrics",
    "aggregate_daily_metrics",
    "ABTestResult",
    "ArmComparison",
    "compare_arm_series",
    "welch_ttest",
    "relative_improvement",
    "difference_in_differences",
    "pearson_correlation",
    "linear_trend",
]
