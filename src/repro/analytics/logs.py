"""Production-style playback logs.

The paper's §2 analyses run over 1.5 million playback trajectories, each
describing one video playback session (user id, timestamps, video length,
watch time, and per-segment buffer / bitrate / size / download / stall
information).  :class:`SessionLog` is that record; :class:`LogCollection`
holds a corpus of them and provides the aggregations the §2 figures need
(exit rate by quality tier, by switch granularity, by stall-time bin, watch
time by QoS, daily stall counts, tolerable stall times, …).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.sim.session import PlaybackTrace, SegmentRecord


@dataclass(frozen=True)
class SessionLog:
    """One playback session in the production log."""

    user_id: str
    day: int
    session_index: int
    trace: PlaybackTrace
    mean_bandwidth_kbps: float

    @property
    def records(self) -> Sequence[SegmentRecord]:
        """Per-segment records of the session."""
        return self.trace.records

    @classmethod
    def zip_with_playbacks(
        cls,
        metas: Sequence[tuple[str, int, int, float]],
        playbacks: Sequence[PlaybackTrace],
    ) -> list["SessionLog"]:
        """Pair session metadata with backend-batch playback results.

        ``metas`` holds one ``(user_id, day, session_index,
        mean_bandwidth_kbps)`` tuple per spec, in the order the specs were
        handed to :meth:`repro.sim.backend.SimBackend.run_batch` — the shared
        reassembly step of every spec-batched session producer (fleet shards,
        campaigns, synthetic log generation).
        """
        return [
            cls(
                user_id=user_id,
                day=day,
                session_index=session_index,
                trace=playback,
                mean_bandwidth_kbps=mean_bandwidth_kbps,
            )
            for (user_id, day, session_index, mean_bandwidth_kbps), playback in zip(
                metas, playbacks, strict=True
            )
        ]

    @property
    def watch_time(self) -> float:
        """Seconds of video watched."""
        return self.trace.watch_time

    @property
    def exited_early(self) -> bool:
        """True when the user abandoned the video before its end."""
        return self.trace.exited_early

    @property
    def total_stall_time(self) -> float:
        """Total stall time in the session (seconds)."""
        return self.trace.total_stall_time

    @property
    def stall_count(self) -> int:
        """Number of stall events in the session."""
        return self.trace.stall_count


class LogCollection:
    """A corpus of :class:`SessionLog` records with §2-style aggregations.

    A collection may be **empty** — longitudinal fleets with churn produce
    zero-arrival days, and those days must still aggregate (to zeros/NaNs)
    and survive telemetry round trips rather than crash the campaign.
    """

    def __init__(self, sessions: Iterable[SessionLog] = ()) -> None:
        self._sessions = list(sessions)

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[SessionLog]:
        return iter(self._sessions)

    def __getitem__(self, index: int) -> SessionLog:
        return self._sessions[index]

    @property
    def sessions(self) -> Sequence[SessionLog]:
        """All sessions."""
        return tuple(self._sessions)

    def filter(self, predicate: Callable[[SessionLog], bool]) -> "LogCollection":
        """Sub-collection of sessions matching ``predicate``."""
        kept = [s for s in self._sessions if predicate(s)]
        if not kept:
            raise ValueError("filter produced an empty collection")
        return LogCollection(kept)

    def users(self) -> list[str]:
        """Distinct user ids, in first-seen order."""
        seen: dict[str, None] = {}
        for session in self._sessions:
            seen.setdefault(session.user_id, None)
        return list(seen)

    def days(self) -> list[int]:
        """Distinct day indices, sorted."""
        return sorted({s.day for s in self._sessions})

    # ------------------------------------------------------------------ #
    # Segment-level aggregations (exit-rate analyses of Figure 4)
    # ------------------------------------------------------------------ #
    def segment_exit_rate(self, predicate: Callable[[SegmentRecord], bool] | None = None) -> float:
        """Exit probability per watched segment, optionally restricted by ``predicate``."""
        watched = 0
        exited = 0
        if predicate is None:
            # Fast path over the cached per-trace record arrays.
            for session in self._sessions:
                exited_flags = session.trace.exited_flags
                watched += exited_flags.size
                exited += int(exited_flags.sum())
        else:
            for session in self._sessions:
                for record in session.records:
                    if not predicate(record):
                        continue
                    watched += 1
                    exited += int(record.exited)
        if watched == 0:
            return float("nan")
        return exited / watched

    def exit_rate_by_level(self, num_levels: int) -> np.ndarray:
        """Exit rate per quality level (Figure 4a)."""
        return np.asarray(
            [
                self.segment_exit_rate(lambda r, lvl=level: r.level == lvl)
                for level in range(num_levels)
            ]
        )

    def exit_rate_by_switch(
        self, granularities: Sequence[int], min_samples: int = 20
    ) -> dict[int, float]:
        """Exit rate by signed switch granularity (Figure 4b).

        Granularity 0 means "no switch"; +g / -g are upward / downward jumps
        of g rungs relative to the previous segment.  Granularities observed
        fewer than ``min_samples`` times report ``nan``.
        """
        counts: dict[int, list[int]] = {g: [0, 0] for g in granularities}
        for session in self._sessions:
            previous_level: int | None = None
            for record in session.records:
                if previous_level is not None:
                    switch = record.level - previous_level
                    if switch in counts:
                        counts[switch][0] += 1
                        counts[switch][1] += int(record.exited)
                previous_level = record.level
        return {
            g: (exited / watched if watched >= min_samples else float("nan"))
            for g, (watched, exited) in counts.items()
        }

    def exit_rate_by_stall_time(
        self,
        bins: Sequence[float],
        record_filter: Callable[[SegmentRecord], bool] | None = None,
        min_samples: int = 20,
    ) -> np.ndarray:
        """Exit rate per cumulative-stall-time bin (Figures 4c/4d).

        ``bins`` are the left edges (seconds); segment ``i`` falls into the
        last bin whose edge does not exceed its cumulative stall time.  Bins
        with fewer than ``min_samples`` segments report ``nan``.
        """
        edges = np.asarray(bins, dtype=float)
        watched = np.zeros(edges.size)
        exited = np.zeros(edges.size)
        if record_filter is None:
            # Fast path: bin every trace's cached cumulative-stall vector at once.
            for session in self._sessions:
                cumulative = session.trace.cumulative_stall_times
                if cumulative.size == 0:
                    continue
                indices = np.maximum(
                    np.searchsorted(edges, cumulative, side="right") - 1, 0
                )
                np.add.at(watched, indices, 1.0)
                np.add.at(exited, indices, session.trace.exited_flags)
        else:
            for session in self._sessions:
                for record in session.records:
                    if not record_filter(record):
                        continue
                    index = int(
                        np.searchsorted(edges, record.cumulative_stall_time, side="right") - 1
                    )
                    index = max(index, 0)
                    watched[index] += 1
                    exited[index] += int(record.exited)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(watched >= min_samples, exited / watched, np.nan)

    # ------------------------------------------------------------------ #
    # Session-level aggregations (watch time, stall counts, tolerances)
    # ------------------------------------------------------------------ #
    def watch_time_by_level(self, num_levels: int) -> np.ndarray:
        """Mean watch time of sessions grouped by their dominant quality level."""
        sums = np.zeros(num_levels)
        counts = np.zeros(num_levels)
        for session in self._sessions:
            if not session.records:
                continue
            levels = [r.level for r in session.records]
            dominant = int(np.bincount(levels, minlength=num_levels).argmax())
            sums[dominant] += session.watch_time
            counts[dominant] += 1
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / counts, np.nan)

    def watch_time_by_stall_time(self, bins: Sequence[float]) -> np.ndarray:
        """Mean watch time of sessions grouped by total stall time bin."""
        edges = np.asarray(bins, dtype=float)
        sums = np.zeros(edges.size)
        counts = np.zeros(edges.size)
        for session in self._sessions:
            index = int(np.searchsorted(edges, session.total_stall_time, side="right") - 1)
            index = max(index, 0)
            sums[index] += session.watch_time
            counts[index] += 1
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / counts, np.nan)

    def daily_stall_counts(self) -> dict[tuple[str, int], int]:
        """Stall events per (user, day)."""
        counts: dict[tuple[str, int], int] = defaultdict(int)
        for session in self._sessions:
            counts[(session.user_id, session.day)] += session.stall_count
        return dict(counts)

    def daily_stall_counts_by_bandwidth(
        self, bin_edges_kbps: Sequence[float]
    ) -> dict[str, list[int]]:
        """Per-day stall counts grouped into bandwidth bins (Figure 8a).

        Returns a mapping from a bin label (``"lo-hi"`` in Mbps) to the list
        of per-(user, day) stall counts of users whose mean bandwidth falls in
        the bin.
        """
        edges = list(bin_edges_kbps)
        if len(edges) < 2:
            raise ValueError("need at least two bin edges")
        per_user_day: dict[tuple[str, int], int] = defaultdict(int)
        user_bandwidth: dict[str, list[float]] = defaultdict(list)
        for session in self._sessions:
            per_user_day[(session.user_id, session.day)] += session.stall_count
            user_bandwidth[session.user_id].append(session.mean_bandwidth_kbps)
        result: dict[str, list[int]] = {}
        for lo, hi in zip(edges[:-1], edges[1:]):
            label = f"{lo / 1000:g}-{hi / 1000:g} Mbps"
            users = {
                u for u, bws in user_bandwidth.items() if lo <= float(np.mean(bws)) < hi
            }
            result[label] = [
                count for (user, _day), count in per_user_day.items() if user in users
            ]
        return result

    def tolerable_stall_times(self) -> dict[str, float]:
        """Per-user average tolerable stall time (Figure 5a).

        For each user, sessions where they kept watching through stalls
        contribute their total stall time; the user's tolerance is the mean
        over those sessions.  Users who never experienced a stall are skipped.
        """
        tolerated: dict[str, list[float]] = defaultdict(list)
        for session in self._sessions:
            if session.total_stall_time <= 0:
                continue
            exited_on_stall = (
                session.exited_early
                and session.records
                and session.records[-1].stall_time > 0
            )
            if not exited_on_stall:
                tolerated[session.user_id].append(session.total_stall_time)
        return {user: float(np.mean(values)) for user, values in tolerated.items() if values}

    def stall_exit_rate_by_user(self, min_stall_events: int = 1) -> dict[str, float]:
        """Per-user fraction of stall events that led to an exit (§5.5).

        A stall event "leads to an exit" when the user exits at the segment
        that stalled or the next one.
        """
        stats: dict[str, list[int]] = defaultdict(lambda: [0, 0])
        for session in self._sessions:
            records = session.records
            for i, record in enumerate(records):
                if record.stall_time <= 0:
                    continue
                stats[session.user_id][0] += 1
                exited_now = record.exited
                exited_next = i + 1 < len(records) and records[i + 1].exited
                if exited_now or exited_next:
                    stats[session.user_id][1] += 1
        return {
            user: exits / events
            for user, (events, exits) in stats.items()
            if events >= min_stall_events
        }

    def group_by_user(self) -> dict[str, list[SessionLog]]:
        """Sessions grouped per user, preserving order."""
        groups: dict[str, list[SessionLog]] = defaultdict(list)
        for session in self._sessions:
            groups[session.user_id].append(session)
        return dict(groups)

    def extend(self, other: "LogCollection") -> "LogCollection":
        """New collection containing this corpus followed by ``other``."""
        return LogCollection(list(self._sessions) + list(other.sessions))


class LinkUtilizationLog:
    """Per-slot, per-link utilization analytics for networked fleet runs.

    Built from the :class:`~repro.net.allocator.LinkUsageSample` stream a
    networked run produces (live via ``FleetResult.link_usage`` or replayed
    from telemetry).  All aggregations are computed from parallel arrays, so
    a day of samples across many links stays cheap to slice.
    """

    def __init__(self, samples: Iterable) -> None:
        samples = list(samples)
        if not samples:
            raise ValueError("a link-utilization log needs at least one sample")
        self._samples = samples
        self.link_ids = np.asarray([s.link_id for s in samples])
        self.steps = np.asarray([s.step for s in samples], dtype=int)
        self.capacity_kbps = np.asarray([s.capacity_kbps for s in samples])
        self.active_sessions = np.asarray(
            [s.active_sessions for s in samples], dtype=int
        )
        self.demand_kbps = np.asarray([s.demand_kbps for s in samples])
        self.allocated_kbps = np.asarray([s.allocated_kbps for s in samples])

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Sequence:
        """All samples, in recorded order."""
        return tuple(self._samples)

    def links(self) -> list[str]:
        """Distinct link ids, sorted."""
        return sorted(set(self.link_ids.tolist()))

    def _mask(self, link_id: str | None) -> np.ndarray:
        if link_id is None:
            return np.ones(len(self._samples), dtype=bool)
        mask = self.link_ids == link_id
        if not mask.any():
            raise KeyError(f"no samples for link {link_id!r}")
        return mask

    def mean_utilization(self, link_id: str | None = None) -> float:
        """Mean allocated/capacity fraction over all slots (idle ones too)."""
        mask = self._mask(link_id)
        return float(
            np.mean(self.allocated_kbps[mask] / self.capacity_kbps[mask])
        )

    def peak_active_sessions(self, link_id: str | None = None) -> int:
        """Highest concurrency observed on the link (or anywhere)."""
        return int(self.active_sessions[self._mask(link_id)].max())

    def mean_allocated_per_session_kbps(self, link_id: str | None = None) -> float:
        """Mean per-session allocated throughput over busy slots.

        The congestion headline: as concurrency rises on a link, this number
        falls — sessions split the same capacity more ways.
        """
        mask = self._mask(link_id) & (self.active_sessions > 0)
        if not mask.any():
            raise ValueError("no busy slots to average over")
        per_session = self.allocated_kbps[mask] / self.active_sessions[mask]
        return float(np.mean(per_session))

    def congested_slot_fraction(
        self, link_id: str | None = None, tolerance: float = 1e-9
    ) -> float:
        """Fraction of busy slots where demand exceeded the allocation."""
        mask = self._mask(link_id) & (self.active_sessions > 0)
        if not mask.any():
            return 0.0
        squeezed = self.demand_kbps[mask] > self.allocated_kbps[mask] + tolerance
        return float(np.mean(squeezed))

    def utilization_timeseries(self, link_id: str) -> tuple[np.ndarray, np.ndarray]:
        """(steps, utilization) for one link, sorted by step."""
        mask = self._mask(link_id)
        order = np.argsort(self.steps[mask], kind="stable")
        steps = self.steps[mask][order]
        utilization = (self.allocated_kbps[mask] / self.capacity_kbps[mask])[order]
        return steps, utilization

    def concurrency_timeseries(self, link_id: str) -> tuple[np.ndarray, np.ndarray]:
        """(steps, active sessions) for one link, sorted by step."""
        mask = self._mask(link_id)
        order = np.argsort(self.steps[mask], kind="stable")
        return self.steps[mask][order], self.active_sessions[mask][order]
