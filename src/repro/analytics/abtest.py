"""A/B campaign statistics: Welch t-tests and difference-in-differences.

The production evaluation (§5.3) runs a 10-day campaign: a 5-day AA phase to
measure the baseline difference between the experimental and the control
group, followed by a 5-day AB phase with LingXi enabled for the experimental
group.  The reported effect is the difference-in-differences of the daily
relative improvements, with a t-test on the per-day deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class ABTestResult:
    """Outcome of a difference-in-differences analysis for one metric."""

    metric: str
    pre_relative_improvements: tuple[float, ...]
    post_relative_improvements: tuple[float, ...]
    effect: float
    standard_error: float
    t_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """True at the conventional 5% level."""
        return self.p_value < 0.05

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.metric}: effect={self.effect * 100:+.3f}% "
            f"± {self.standard_error * 100:.3f}% "
            f"(t={self.t_statistic:.3f}, p={self.p_value:.4f})"
        )


def welch_ttest(sample_a: Sequence[float], sample_b: Sequence[float]) -> tuple[float, float]:
    """Welch's unequal-variance t-test; returns ``(t_statistic, p_value)``."""
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("each sample needs at least two observations")
    result = stats.ttest_ind(a, b, equal_var=False)
    return float(result.statistic), float(result.pvalue)


def relative_improvement(treatment: Sequence[float], control: Sequence[float]) -> np.ndarray:
    """Per-day relative improvement ``(treatment - control) / control``."""
    treatment_arr = np.asarray(treatment, dtype=float)
    control_arr = np.asarray(control, dtype=float)
    if treatment_arr.shape != control_arr.shape:
        raise ValueError("treatment and control must have the same length")
    if np.any(control_arr == 0):
        raise ValueError("control values must be non-zero")
    return (treatment_arr - control_arr) / control_arr


def difference_in_differences(
    metric: str,
    treatment_pre: Sequence[float],
    control_pre: Sequence[float],
    treatment_post: Sequence[float],
    control_post: Sequence[float],
) -> ABTestResult:
    """Difference-in-differences on daily relative improvements.

    The AA phase (``*_pre``) measures the inherent bias between the groups;
    the AB phase (``*_post``) measures bias plus treatment effect.  The effect
    is the mean post-improvement minus the mean pre-improvement, with a
    one-sample t-test of the post-minus-pre-mean daily deltas against zero.
    """
    pre = relative_improvement(treatment_pre, control_pre)
    post = relative_improvement(treatment_post, control_post)
    if pre.size < 2 or post.size < 2:
        raise ValueError("need at least two pre and two post days")
    deltas = post - pre.mean()
    effect = float(deltas.mean())
    standard_error = float(deltas.std(ddof=1) / np.sqrt(deltas.size))
    if standard_error == 0:
        t_statistic = float("inf") if effect != 0 else 0.0
        p_value = 0.0 if effect != 0 else 1.0
    else:
        t_statistic = effect / standard_error
        p_value = float(2.0 * stats.t.sf(abs(t_statistic), df=deltas.size - 1))
    return ABTestResult(
        metric=metric,
        pre_relative_improvements=tuple(float(v) for v in pre),
        post_relative_improvements=tuple(float(v) for v in post),
        effect=effect,
        standard_error=standard_error,
        t_statistic=t_statistic,
        p_value=p_value,
    )
