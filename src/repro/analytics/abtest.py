"""A/B campaign statistics: Welch t-tests, difference-in-differences, arms.

The production evaluation (§5.3) runs a 10-day campaign: a 5-day AA phase to
measure the baseline difference between the experimental and the control
group, followed by a 5-day AB phase with LingXi enabled for the experimental
group.  The reported effect is the difference-in-differences of the daily
relative improvements, with a t-test on the per-day deltas.

Longitudinal campaigns (:mod:`repro.fleet.longitudinal`) add a second
protocol: two arms run the *same* K days with shared seeds, so their per-day
cohort metrics (DAU, retention rate, watch time, stall time, …) are paired
observations.  :func:`compare_arm_series` reports the paired per-day delta
with a confidence interval — the compounding analogue of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class ABTestResult:
    """Outcome of a difference-in-differences analysis for one metric."""

    metric: str
    pre_relative_improvements: tuple[float, ...]
    post_relative_improvements: tuple[float, ...]
    effect: float
    standard_error: float
    t_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """True at the conventional 5% level."""
        return self.p_value < 0.05

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.metric}: effect={self.effect * 100:+.3f}% "
            f"± {self.standard_error * 100:.3f}% "
            f"(t={self.t_statistic:.3f}, p={self.p_value:.4f})"
        )


@dataclass(frozen=True)
class ArmComparison:
    """Paired per-day comparison of one metric between two campaign arms."""

    metric: str
    treatment_daily: tuple[float, ...]
    control_daily: tuple[float, ...]
    #: Mean per-day difference ``treatment - control``.
    mean_delta: float
    #: ``mean_delta`` relative to the control mean (NaN when control sums to 0).
    relative_delta: float
    standard_error: float
    #: Two-sided confidence interval on ``mean_delta`` at ``confidence``.
    confidence_interval: tuple[float, float]
    confidence: float
    t_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """True when the interval's two-sided test rejects zero."""
        return self.p_value < 1.0 - self.confidence

    def summary(self) -> str:
        """One-line human-readable summary."""
        lo, hi = self.confidence_interval
        rel = (
            f" ({self.relative_delta * 100:+.2f}%)"
            if np.isfinite(self.relative_delta)
            else ""
        )
        return (
            f"{self.metric}: delta={self.mean_delta:+.4f}{rel} "
            f"CI{self.confidence * 100:.0f}=[{lo:+.4f}, {hi:+.4f}] "
            f"(t={self.t_statistic:.3f}, p={self.p_value:.4f})"
        )


def compare_arm_series(
    metric: str,
    treatment_daily: Sequence[float],
    control_daily: Sequence[float],
    confidence: float = 0.95,
) -> ArmComparison:
    """Paired t-test of per-day metric deltas between two shared-seed arms.

    Both series must cover the same days in order (one value per day).  The
    effect is the mean per-day ``treatment - control`` delta with a Student-t
    confidence interval over the daily deltas — days are the unit of
    replication, exactly as in the paper's campaign statistics.
    """
    treatment = np.asarray(treatment_daily, dtype=float)
    control = np.asarray(control_daily, dtype=float)
    if treatment.shape != control.shape:
        raise ValueError("treatment and control must cover the same days")
    if treatment.size < 2:
        raise ValueError("need at least two days per arm")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    deltas = treatment - control
    mean_delta = float(deltas.mean())
    control_mean = float(control.mean())
    relative_delta = (
        mean_delta / abs(control_mean) if control_mean != 0 else float("nan")
    )
    standard_error = float(deltas.std(ddof=1) / np.sqrt(deltas.size))
    df = deltas.size - 1
    if standard_error == 0:
        t_statistic = float("inf") if mean_delta != 0 else 0.0
        p_value = 0.0 if mean_delta != 0 else 1.0
        interval = (mean_delta, mean_delta)
    else:
        t_statistic = mean_delta / standard_error
        p_value = float(2.0 * stats.t.sf(abs(t_statistic), df=df))
        half_width = float(stats.t.ppf(0.5 + confidence / 2.0, df=df)) * standard_error
        interval = (mean_delta - half_width, mean_delta + half_width)
    return ArmComparison(
        metric=metric,
        treatment_daily=tuple(float(v) for v in treatment),
        control_daily=tuple(float(v) for v in control),
        mean_delta=mean_delta,
        relative_delta=relative_delta,
        standard_error=standard_error,
        confidence_interval=interval,
        confidence=confidence,
        t_statistic=t_statistic,
        p_value=p_value,
    )


def welch_ttest(sample_a: Sequence[float], sample_b: Sequence[float]) -> tuple[float, float]:
    """Welch's unequal-variance t-test; returns ``(t_statistic, p_value)``."""
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("each sample needs at least two observations")
    result = stats.ttest_ind(a, b, equal_var=False)
    return float(result.statistic), float(result.pvalue)


def relative_improvement(treatment: Sequence[float], control: Sequence[float]) -> np.ndarray:
    """Per-day relative improvement ``(treatment - control) / control``."""
    treatment_arr = np.asarray(treatment, dtype=float)
    control_arr = np.asarray(control, dtype=float)
    if treatment_arr.shape != control_arr.shape:
        raise ValueError("treatment and control must have the same length")
    if np.any(control_arr == 0):
        raise ValueError("control values must be non-zero")
    return (treatment_arr - control_arr) / control_arr


def difference_in_differences(
    metric: str,
    treatment_pre: Sequence[float],
    control_pre: Sequence[float],
    treatment_post: Sequence[float],
    control_post: Sequence[float],
) -> ABTestResult:
    """Difference-in-differences on daily relative improvements.

    The AA phase (``*_pre``) measures the inherent bias between the groups;
    the AB phase (``*_post``) measures bias plus treatment effect.  The effect
    is the mean post-improvement minus the mean pre-improvement, with a
    one-sample t-test of the post-minus-pre-mean daily deltas against zero.
    """
    pre = relative_improvement(treatment_pre, control_pre)
    post = relative_improvement(treatment_post, control_post)
    if pre.size < 2 or post.size < 2:
        raise ValueError("need at least two pre and two post days")
    deltas = post - pre.mean()
    effect = float(deltas.mean())
    standard_error = float(deltas.std(ddof=1) / np.sqrt(deltas.size))
    if standard_error == 0:
        t_statistic = float("inf") if effect != 0 else 0.0
        p_value = 0.0 if effect != 0 else 1.0
    else:
        t_statistic = effect / standard_error
        p_value = float(2.0 * stats.t.sf(abs(t_statistic), df=deltas.size - 1))
    return ABTestResult(
        metric=metric,
        pre_relative_improvements=tuple(float(v) for v in pre),
        post_relative_improvements=tuple(float(v) for v in post),
        effect=effect,
        standard_error=standard_error,
        t_statistic=t_statistic,
        p_value=p_value,
    )
