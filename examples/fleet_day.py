"""Fleet demo: one simulated day of platform traffic on a process pool.

Run with ``python examples/fleet_day.py [--scenario NAME]``.  The default run
simulates 2,000+ playback sessions from a 500-user population across 4 shards
on a multiprocessing pool, emits the full JSONL telemetry stream, replays the
telemetry file back into a :class:`LogCollection`, and verifies that the
replayed exit-rate-by-stall-bin aggregate matches the live run exactly.
"""

from __future__ import annotations

import argparse
import tempfile
from contextlib import ExitStack
from pathlib import Path

import numpy as np

from repro import obs
from repro.obs.live import live_run
from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    available_scenarios,
    replay_link_utilization,
    replay_log_collection,
)
from repro.net import ALLOCATORS, available_topologies, get_topology
from repro.sim import available_backends
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation

STALL_BINS = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        default="steady_state",
        choices=available_scenarios(),
        help="fleet workload to simulate",
    )
    parser.add_argument(
        "--backend",
        default="scalar",
        choices=available_backends(),
        help="simulation backend executing each shard's sessions",
    )
    parser.add_argument(
        "--network",
        default=None,
        choices=available_topologies(),
        help=(
            "shared-bottleneck topology: sessions fair-share edge-link "
            "capacity and congestion becomes emergent (default: uncoupled)"
        ),
    )
    parser.add_argument(
        "--allocator",
        default=None,
        choices=ALLOCATORS,
        help=(
            "override the topology's bandwidth allocator (requires "
            "--network): iterated path-aware water-filling or the "
            "Low-Lapsley primal-dual engine"
        ),
    )
    parser.add_argument("--users", type=int, default=500)
    parser.add_argument("--sessions-per-user", type=int, default=4)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--telemetry",
        default=None,
        help="telemetry JSONL path (default: a temporary file)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "enable the observability layer: span tree across the "
            "orchestrator/engine/allocator layers, fleet counters, and a "
            "run_report telemetry event"
        ),
    )
    parser.add_argument(
        "--report",
        default=None,
        help="with --profile, also write the run health report JSON here",
    )
    parser.add_argument(
        "--live-status",
        default=None,
        metavar="PATH",
        help=(
            "publish live heartbeats: write a status file here and attach a "
            "watchable shared-memory progress table (monitor the run with "
            "`python -m repro.obs.monitor PATH`)"
        ),
    )
    args = parser.parse_args()
    if args.profile:
        obs.enable()

    population = UserPopulation.generate(
        args.users, seed=args.seed, bandwidth_median_kbps=6000.0
    )
    library = VideoLibrary(num_videos=8, mean_duration=40.0, std_duration=15.0, seed=1)
    telemetry_path = Path(
        args.telemetry
        or Path(tempfile.mkdtemp(prefix="fleet_day_")) / "telemetry.jsonl"
    )

    orchestrator = FleetOrchestrator(
        FleetConfig(
            num_shards=args.shards,
            num_workers=args.workers,
            sessions_per_user=args.sessions_per_user,
            trace_length=100,
            seed=args.seed,
            backend=args.backend,
            network=args.network,
            allocator=args.allocator,
        )
    )
    network_label = f", {args.network} network" if args.network else ""
    if args.allocator:
        network_label += f" ({args.allocator} allocator)"
    print(
        f"simulating {args.users} users x {args.sessions_per_user} sessions "
        f"({args.scenario}{network_label}) on {args.shards} shards / "
        f"{args.workers} workers [{args.backend} backend] ..."
    )
    with ExitStack() as stack:
        if args.live_status:
            stack.enter_context(live_run(args.live_status, run_id="fleet_day"))
            print(f"live status: python -m repro.obs.monitor {args.live_status}")
        result = orchestrator.run(
            population,
            library,
            scenario=args.scenario,
            telemetry_path=telemetry_path,
        )

    metrics = result.metrics
    print(f"\nrun {result.run_id}")
    print(f"  sessions          {metrics.num_sessions}")
    print(f"  segments          {metrics.num_segments}")
    print(f"  session exit rate {metrics.session_exit_rate * 100:.1f}%")
    print(f"  segment exit rate {metrics.segment_exit_rate * 100:.2f}%")
    print(f"  watch time        {metrics.total_watch_time_s / 3600:.1f} h")
    print(f"  stall time        {metrics.total_stall_time_s:.1f} s")
    print(f"  mean bitrate      {metrics.mean_bitrate_kbps:.0f} kbps")
    print(f"  wall time         {result.wall_time_s:.1f} s "
          f"({result.sessions_per_second:.0f} sessions/s)")
    for output in result.shard_outputs:
        print(
            f"    shard {output.shard_index}: {len(output.sessions)} sessions, "
            f"{output.num_segments} segments in {output.wall_time_s:.1f}s"
        )

    if args.profile and result.obs_report is not None:
        print()
        print(obs.format_report(result.obs_report))
        if args.report:
            path = obs.write_report(result.obs_report, args.report)
            print(f"run health report written to {path}")

    size_kb = telemetry_path.stat().st_size / 1024
    print(f"\ntelemetry: {telemetry_path} ({size_kb:.0f} KiB)")

    replayed = replay_log_collection(telemetry_path)
    live = result.logs.exit_rate_by_stall_time(STALL_BINS)
    replay = replayed.exit_rate_by_stall_time(STALL_BINS)
    np.testing.assert_array_equal(live, replay)
    print("replayed exit-rate-by-stall-bin aggregate matches live run exactly:")
    for edge, rate in zip(STALL_BINS, live):
        label = "n/a" if np.isnan(rate) else f"{rate * 100:.2f}%"
        print(f"  stall >= {edge:>4.1f}s: {label}")

    if args.network:
        live_util = result.link_utilization()
        replayed_util = replay_link_utilization(telemetry_path)
        assert replayed_util.mean_utilization() == live_util.mean_utilization()
        print("\nlink utilization (replayed exactly from telemetry):")
        seen = set(live_util.links())
        for link_id in get_topology(args.network).link_ids:
            if link_id not in seen:
                # always-idle links carry no usage samples (trailing-idle
                # samples are trimmed per link)
                print(f"  {link_id:>12}: idle all day")
                continue
            print(
                f"  {link_id:>12}: mean util {live_util.mean_utilization(link_id) * 100:5.1f}%, "
                f"peak {live_util.peak_active_sessions(link_id)} sessions, "
                f"congested slots {live_util.congested_slot_fraction(link_id) * 100:.0f}%, "
                f"{live_util.mean_allocated_per_session_kbps(link_id):.0f} kbps/session"
            )


if __name__ == "__main__":
    main()
