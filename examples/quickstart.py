"""Quickstart: play a video with several ABR algorithms and compare QoS.

Run with ``python examples/quickstart.py``.  This exercises the simulation
substrate only — no training, no personalization — and prints per-algorithm
bitrate, stall time and ``QoE_lin`` on a bandwidth-constrained trace.
"""

from __future__ import annotations

import numpy as np

from repro import BBA, BOLA, HYB, PlaybackSession, RobustMPC, ThroughputRule, Video
from repro.analytics import session_qoe_lin
from repro.sim import StationaryTraceGenerator


def main() -> None:
    rng = np.random.default_rng(0)
    video = Video(num_segments=60, segment_duration=2.0, seed=1)
    trace = StationaryTraceGenerator(mean_kbps=2500, std_kbps=800).generate(
        length=120, rng=rng, name="constrained"
    )
    session = PlaybackSession()

    print(f"video: {video.duration:.0f}s, ladder {video.ladder.bitrates_kbps} kbps")
    print(f"trace: mean {trace.mean:.0f} kbps, std {trace.std:.0f} kbps")
    print()
    print(f"{'algorithm':<16} {'bitrate kbps':>12} {'stall s':>8} {'switches':>9} {'QoE_lin':>9}")
    for abr in (HYB(), BBA(), BOLA(), ThroughputRule(), RobustMPC()):
        playback = session.run(abr, video, trace, rng=rng)
        print(
            f"{abr.name:<16} {playback.mean_bitrate_kbps:>12.0f} "
            f"{playback.total_stall_time:>8.2f} {playback.num_switches:>9d} "
            f"{session_qoe_lin(playback):>9.1f}"
        )


if __name__ == "__main__":
    main()
