"""Personalized streaming for a single stall-sensitive user.

Demonstrates the full LingXi loop on one user: a stall-sensitive viewer on a
low-bandwidth connection repeatedly abandons videos under the static HYB
baseline; wrapping the same HYB in :class:`repro.core.LingXiABR` lets the
controller observe the exits, trigger online Bayesian optimization and deploy
a more conservative ``beta``, recovering most of the abandoned sessions.

Run with ``python examples/personalized_session.py``.
"""

from __future__ import annotations

import numpy as np

from repro import HYB, PlaybackSession
from repro.core import (
    ControllerConfig,
    LingXiABR,
    LingXiController,
    MonteCarloConfig,
    ParameterSpace,
)
from repro.experiments.common import SubstrateConfig, build_substrate
from repro.sim import StationaryTraceGenerator, Video
from repro.users import RuleBasedUser


def play_sessions(abr, video, user, sessions: int) -> tuple[float, float]:
    """Each session sees fresh network conditions from the same slow regime."""
    generator = StationaryTraceGenerator(mean_kbps=1500, std_kbps=350)
    engine = PlaybackSession()
    completions, stalls = [], []
    for i in range(sessions):
        rng = np.random.default_rng(i)
        trace = generator.generate(length=200, rng=rng, name=f"session{i}")
        playback = engine.run(abr, video, trace, exit_model=user, rng=rng)
        completions.append(float(playback.completed))
        stalls.append(playback.total_stall_time)
    return float(np.mean(completions)), float(np.mean(stalls))


def main() -> None:
    print("building substrate (population, logs, exit-rate predictor) ...")
    substrate = build_substrate(SubstrateConfig(num_users=80, seed=7), train_epochs=8)

    video = Video(num_segments=40, segment_duration=2.0, seed=2)
    user = RuleBasedUser(stall_time_threshold_s=3.0, stall_count_threshold=4)

    baseline_completion, baseline_stall = play_sessions(HYB(), video, user, sessions=15)
    print(
        f"static HYB (beta=0.9): completion {baseline_completion * 100:.0f}%, "
        f"mean stall {baseline_stall:.2f}s"
    )

    controller = LingXiController(
        parameter_space=ParameterSpace.for_hyb(),
        predictor=substrate.predictor,
        monte_carlo=MonteCarloConfig(num_samples=4, max_sample_duration_s=60.0),
        config=ControllerConfig(mode="bayesian", max_sample_times=4, seed=0),
    )
    lingxi = LingXiABR(HYB(), controller)
    lingxi_completion, lingxi_stall = play_sessions(lingxi, video, user, sessions=15)
    print(
        f"LingXi(HYB):           completion {lingxi_completion * 100:.0f}%, "
        f"mean stall {lingxi_stall:.2f}s, learned beta {lingxi.parameters.beta:.2f}, "
        f"{len(controller.history)} optimization activations"
    )
    print(
        "personal tolerance estimate carried in long-term state: "
        f"{controller.user_state.tolerance_estimate_s:.1f}s"
    )


if __name__ == "__main__":
    main()
