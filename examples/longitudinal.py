"""Longitudinal fleet demo: K engagement-coupled days with churn and drift.

Run with ``python examples/longitudinal.py [--days K] [--ab]``.  The default
run simulates a population through several days where each user's next-day
arrival probability depends on their engagement today (stalls and abandoned
sessions erode it), the population drifts (bandwidth/tolerance wobble plus a
daily new-user influx), per-user controller state carries across days, and
the full per-day JSONL telemetry — sessions *and* retention decisions — is
replayed back and verified to match the live run exactly.

``--ab`` additionally runs the cross-day A/B harness: two arms (aggressive
vs conservative HYB) play the same days with shared seeds, and the per-day
cohort metrics are compared with paired confidence intervals — the
compounding analogue of the Figure 12 protocol.
"""

from __future__ import annotations

import argparse
import tempfile
from contextlib import ExitStack
from pathlib import Path

import numpy as np

from repro import obs
from repro.obs.live import live_run
from repro.abr.base import QoEParameters
from repro.fleet import (
    DriftConfig,
    HybFleetFactory,
    LongitudinalCampaign,
    LongitudinalConfig,
    available_scenarios,
    replay_log_collection,
    replay_retention_decisions,
    run_ab_campaign,
)
from repro.net import available_topologies
from repro.sim import available_backends
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation


def _parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=4, help="simulated days")
    parser.add_argument("--users", type=int, default=200, help="initial population size")
    parser.add_argument("--sessions", type=int, default=2, help="sessions per user per day")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--influx", type=int, default=8, help="new users per day")
    parser.add_argument(
        "--backend", default="scalar", choices=available_backends(),
        help="simulation backend (campaigns are bit-identical across backends)",
    )
    parser.add_argument(
        "--network", default=None, choices=available_topologies(),
        help="shared-bottleneck topology (optional)",
    )
    parser.add_argument(
        "--scenario", default="steady_state", choices=available_scenarios(),
    )
    parser.add_argument(
        "--ab", action="store_true", help="run the two-arm cross-day A/B harness"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "enable the observability layer and print/write a campaign-wide "
            "run health report (span tree across campaign/fleet/engine layers)"
        ),
    )
    parser.add_argument(
        "--report",
        default=None,
        help="with --profile, also write the run health report JSON here",
    )
    parser.add_argument(
        "--live-status",
        default=None,
        metavar="PATH",
        help=(
            "publish live heartbeats for the whole campaign: write a status "
            "file here (watch with `python -m repro.obs.monitor PATH`)"
        ),
    )
    return parser.parse_args()


def _config(args: argparse.Namespace) -> LongitudinalConfig:
    return LongitudinalConfig(
        days=args.days,
        seed=args.seed,
        num_shards=args.shards,
        num_workers=args.workers,
        sessions_per_user=args.sessions,
        trace_length=80,
        backend=args.backend,
        network=args.network,
        drift=DriftConfig(influx_per_day=args.influx),
    )


def run_single(args: argparse.Namespace, population, library) -> None:
    with tempfile.TemporaryDirectory(prefix="longitudinal_") as tmp:
        telemetry_dir = Path(tmp)
        result = LongitudinalCampaign(_config(args)).run(
            population,
            library,
            scenario=args.scenario,
            telemetry_dir=telemetry_dir,
        )

        print(f"\nper-day campaign table ({args.backend} backend):")
        print("  day   DAU  retention  sessions  exit%   stall_s   watch_h")
        for day in result.days:
            metrics = day.result.metrics
            retention = (
                f"{day.retention_rate:9.3f}"
                if not np.isnan(day.retention_rate)
                else "        -"
            )
            print(
                f"  {day.day:>3}  {day.dau:>4}  {retention}  "
                f"{metrics.num_sessions:>8}  {metrics.session_exit_rate * 100:5.1f}  "
                f"{metrics.total_stall_time_s:8.1f}  "
                f"{metrics.total_watch_time_s / 3600:8.2f}"
            )
        print(f"final roster: {len(result.final_roster)} users "
              f"({len(result.final_roster) - len(population)} joined)")

        # exact replay: per-day session telemetry and retention decisions
        for day in result.days:
            replayed = replay_log_collection(telemetry_dir / f"day_{day.day:03d}.jsonl")
            live = day.result.logs
            assert len(replayed) == len(live)
            if len(live) and replayed.segment_exit_rate() != live.segment_exit_rate():
                raise SystemExit(f"day {day.day}: replayed aggregates diverged")
        live_decisions = {
            (day.day, uid): decision
            for day in result.days
            for uid, decision in day.decisions.items()
        }
        replayed_decisions = replay_retention_decisions(telemetry_dir / "campaign.jsonl")
        if replayed_decisions != live_decisions:
            raise SystemExit("retention decisions diverged after telemetry replay")
        print(
            f"telemetry verified: {sum(len(d.result.logs) for d in result.days)} "
            f"sessions and {len(replayed_decisions)} retention decisions replay exactly"
        )


def run_ab(args: argparse.Namespace, population, library) -> None:
    result = run_ab_campaign(
        population,
        library,
        arms={
            "aggressive": HybFleetFactory(parameters=QoEParameters(beta=0.9)),
            "conservative": HybFleetFactory(parameters=QoEParameters(beta=0.5)),
        },
        config=_config(args),
        scenario=args.scenario,
    )
    print("\ncross-day A/B (aggressive vs conservative HYB, paired days):")
    for line in result.summary_lines():
        print("  " + line)
    for arm, campaign in result.arms.items():
        print(f"  {arm}: DAU {campaign.dau_series}")


def main() -> None:
    args = _parse_args()
    print(
        f"simulating {args.days} days x {args.users} users "
        f"(backend={args.backend}, network={args.network or 'uncoupled'}, "
        f"scenario={args.scenario}) ..."
    )
    population = UserPopulation.generate(
        args.users, seed=args.seed, bandwidth_median_kbps=3500.0
    )
    library = VideoLibrary(num_videos=6, mean_duration=45.0, std_duration=15.0, seed=2)
    if args.profile:
        obs.enable()
    try:
        with ExitStack() as stack:
            if args.live_status:
                stack.enter_context(
                    live_run(args.live_status, run_id="longitudinal")
                )
                print(f"live status: python -m repro.obs.monitor {args.live_status}")
            run_single(args, population, library)
            if args.ab:
                run_ab(args, population, library)
    finally:
        if args.profile:
            report = obs.build_run_report(run_id="longitudinal")
            obs.disable()
            print()
            print(obs.format_report(report))
            if args.report:
                path = obs.write_report(report, args.report)
                print(f"run health report written to {path}")


if __name__ == "__main__":
    main()
