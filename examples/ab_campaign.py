"""Simulated difference-in-differences A/B campaign (the §5.3 protocol).

Splits a synthetic user population into control and treatment groups, runs an
AA phase (both on static HYB) followed by an AB phase (treatment switches to
LingXi-tuned HYB), and prints the per-day metrics plus the
difference-in-differences estimates for watch time, bitrate and stall time,
and the per-bandwidth-bin breakdown of Figure 13.

Run with ``python examples/ab_campaign.py`` (takes a minute or two).
"""

from __future__ import annotations

from repro.experiments import fig12_ab_test, fig13_bandwidth_bins
from repro.experiments.common import SubstrateConfig, build_substrate


def main() -> None:
    print("building substrate ...")
    substrate = build_substrate(SubstrateConfig(num_users=120, seed=3), train_epochs=8)

    print("running AA/AB campaign ...")
    result = fig12_ab_test.run(substrate=substrate, days_pre=3, days_post=4)

    print("\nper-day group metrics (watch time s / mean bitrate kbps / stall s per hour):")
    for control, treatment in zip(result.control_daily, result.treatment_daily):
        marker = "AB" if control.day >= result.days_pre else "AA"
        print(
            f"  day {control.day + 1} [{marker}] control:   "
            f"{control.total_watch_time:>9.0f} / {control.mean_bitrate_kbps:>6.0f} / "
            f"{control.stall_seconds_per_hour:>6.2f}"
        )
        print(
            f"  day {treatment.day + 1} [{marker}] treatment: "
            f"{treatment.total_watch_time:>9.0f} / {treatment.mean_bitrate_kbps:>6.0f} / "
            f"{treatment.stall_seconds_per_hour:>6.2f}"
        )

    print("\ndifference-in-differences estimates:")
    print("  " + result.watch_time.summary())
    print("  " + result.bitrate.summary())
    print("  " + result.stall_time.summary())

    print("\nper-bandwidth-bin behaviour (Figure 13):")
    bins = fig13_bandwidth_bins.run(substrate=substrate, ab_result=result)
    for label, beta, stall in zip(bins.bin_labels, bins.mean_beta, bins.stall_change_percent):
        print(f"  {label:>12}: learned beta {beta:.3f}, stall change {stall:+.1f}%")


if __name__ == "__main__":
    main()
