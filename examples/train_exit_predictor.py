"""Train the hybrid exit-rate predictor from synthetic production logs.

Pipeline (mirrors §3.3 of the paper): generate a heterogeneous user
population, simulate production playback logs, build the stall-event dataset,
train the branched 1D-CNN with balanced sampling, and report accuracy /
precision / recall / F1 on the held-out split — also comparing against the
ALL-segments dataset composition (Figure 9a).

Run with ``python examples/train_exit_predictor.py``.
"""

from __future__ import annotations

from repro.core.exit_predictor import train_and_evaluate
from repro.core.statistics_model import OverallStatisticsModel
from repro.datasets import (
    DatasetComposition,
    LogGenerationConfig,
    build_exit_dataset,
    generate_production_logs,
)
from repro.sim import VideoLibrary
from repro.users import UserPopulation


def main() -> None:
    population = UserPopulation.generate(120, seed=0, bandwidth_median_kbps=4000)
    library = VideoLibrary(num_videos=8, seed=1)
    print(f"simulating {len(population)} users ...")
    logs = generate_production_logs(
        population,
        library,
        LogGenerationConfig(days=3, sessions_per_user_per_day=5, seed=2),
    )
    print(f"generated {len(logs)} playback sessions")

    statistics_model = OverallStatisticsModel.fit(logs, library.ladder.num_levels)
    print("overall-statistics exit rates per tier:", statistics_model.level_rates.round(4))

    for composition in (DatasetComposition.ALL, DatasetComposition.STALL):
        dataset = build_exit_dataset(logs, composition)
        predictor, evaluation = train_and_evaluate(
            dataset, epochs=12, seed=0, statistics_model=statistics_model
        )
        print(
            f"{composition.value:>5} dataset: {len(dataset)} samples "
            f"(exit fraction {dataset.exit_fraction:.2f}) -> "
            f"acc {evaluation.accuracy:.3f}, prec {evaluation.precision:.3f}, "
            f"recall {evaluation.recall:.3f}, f1 {evaluation.f1:.3f}"
        )

    print("done — the stall-only dataset isolates QoS-driven exits (Takeaway 1).")


if __name__ == "__main__":
    main()
